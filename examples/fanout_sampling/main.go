// Fan-out sampling: copy-on-write stream forking for parallel
// sampling and agentic branch exploration.
//
// Two faces of the same Fork API:
//
//  1. Declarative (Request.Fanout / ForkAfter): the workload says
//     "this request branches into 8 streams after N shared output
//     tokens" and the engine forks it automatically at exactly that
//     point. The prompt and the pre-divergence generation exist once;
//     branches take references, and the first divergent write into a
//     still-shared partial block triggers one copy-on-write page copy,
//     charged to the step's DMA time. We run the identical fan-out
//     naively — 8 independent requests per root — and compare peak KV.
//
//  2. Interactive (Stream.Fork): an online client streams a root
//     request, decides mid-generation that the trajectory is worth
//     exploring, and forks it into live branches — each a first-class
//     stream with its own events, cancellation and report row. A
//     forked branch needs no prefill, so its first token is one decode
//     step away.
//
// Run: go run ./examples/fanout_sampling
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"jenga"
)

const (
	promptLen = 256
	// forkAfter is chosen mid-block (256+258 = 514 tokens, not a
	// multiple of the 16-token page) so the fork point splits a
	// partial block and the copy-on-write path is exercised; a
	// block-aligned fork legitimately copies nothing, because
	// completed blocks are immutable.
	forkAfter = 258
	outputLen = 322 // 64 divergent tail tokens per branch
	branch    = 8
)

// runBatch serves one fan-out request — forked or naively lowered to
// independent branches — and returns its peak KV bytes plus the
// manager's sharing counters.
func runBatch(naive bool) (peak int64, stats jenga.AllocStats) {
	spec := jenga.Models.Gemma2_2B()
	mgr, err := jenga.NewManager(jenga.ManagerConfig{
		Spec: spec, CapacityBytes: 2 << 30,
		EnablePrefixCache: true, RequestAware: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := jenga.NewEngine(jenga.EngineConfig{
		Spec: spec, Device: jenga.H100(), Manager: mgr, SampleEvery: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	gen := jenga.NewWorkloadGen(7)
	reqs := gen.FanOut(1, promptLen, forkAfter, outputLen, branch)
	jenga.AllAtOnce(reqs)
	if naive {
		reqs = jenga.NaiveFanOut(reqs)
	}
	res, err := eng.Run(reqs)
	if err != nil {
		log.Fatal(err)
	}
	if res.Finished != branch {
		log.Fatalf("finished %d branches, want %d", res.Finished, branch)
	}
	for _, s := range res.MemTimeline {
		if s.Usage.Used > peak {
			peak = s.Usage.Used
		}
	}
	return peak, mgr.Stats()
}

func main() {
	fmt.Println("fan-out sampling: one prompt, 8 parallel branches after a shared")
	fmt.Printf("%d-token generation — copy-on-write forking vs 8 independent requests\n", forkAfter)
	fmt.Println()

	// Face 1: the declarative fan-out, forked vs naive.
	forkPeak, st := runBatch(false)
	naivePeak, _ := runBatch(true)
	fmt.Printf("%-28s %12s %12s\n", "mode", "peak KV", "KV/branch")
	fmt.Printf("%-28s %12d %12d\n", "fork (copy-on-write)", forkPeak, forkPeak/branch)
	fmt.Printf("%-28s %12d %12d\n", "naive (independent)", naivePeak, naivePeak/branch)
	fmt.Printf("%-28s %11.1fx lower per branch\n", "",
		float64(naivePeak)/float64(forkPeak))
	fmt.Printf("sharing machinery: %d forks, %d CoW page copies (%d bytes D2D)\n",
		st.Forks, st.CowCopies, st.CowCopyBytes)
	fmt.Println()

	// Face 2: interactive forking on the online serving surface.
	spec := jenga.Models.Gemma2_2B()
	mgr, err := jenga.NewManager(jenga.ManagerConfig{
		Spec: spec, CapacityBytes: 2 << 30,
		EnablePrefixCache: true, RequestAware: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := jenga.NewServer(jenga.ServerConfig{
		Engine: jenga.EngineConfig{Spec: spec, Device: jenga.H100(), Manager: mgr},
	})
	if err != nil {
		log.Fatal(err)
	}
	gen := jenga.NewWorkloadGen(11)
	rootReq := gen.ShareGPT(1)[0]
	rootReq.Prompt = rootReq.Prompt[:promptLen]
	rootReq.OutputLen = 100_000 // open-ended; every branch is bounded below
	rootReq.Arrival = 0

	root, err := srv.Submit(context.Background(), rootReq)
	if err != nil {
		log.Fatal(err)
	}
	// Stream until the trajectory looks promising, then branch.
	for ev := range root.Events() {
		if (ev.Type == jenga.EventFirstToken || ev.Type == jenga.EventToken) &&
			ev.Generated >= 32 {
			break
		}
	}
	srv.Pause() // freeze the simulation at a step boundary to fork
	kids, err := root.Fork(3)
	if err != nil {
		log.Fatal(err)
	}
	u := srv.Snapshot().Usage
	fmt.Printf("forked stream %d into %d branches mid-decode\n", root.ID(), len(kids))
	fmt.Printf("  shared KV at the fork: %d bytes referenced %dx (%d bytes saved)\n",
		u.Used, len(kids)+1, u.SharedBytes)
	// Bound every branch: each samples to 160 tokens, then stops.
	root.CancelAfter(160)
	for _, k := range kids {
		k.CancelAfter(160)
	}
	srv.Resume()

	for _, k := range kids {
		res, err := k.Wait(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  branch %d: %d tokens, first token %v after the fork (no prefill)\n",
			k.ID(), res.Generated, res.TTFT.Round(time.Millisecond))
	}
	if err := srv.Drain(); err != nil {
		log.Fatal(err)
	}
	rep := srv.Report()
	fmt.Printf("report: %d streams submitted, %d sampled to their bound\n",
		rep.Submitted, rep.Cancelled)
	if u := srv.Snapshot().Usage; u.Used == 0 && u.SharedBytes == 0 {
		fmt.Println("post-drain: all branch KV released, no page leaked")
	}
}
