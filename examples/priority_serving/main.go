// Priority serving: the pluggable scheduling layer in action. A fleet
// of low-priority batch requests fills the engine's memory with
// long-running decodes; a burst of high-priority interactive requests
// then lands on the full engine. Under the strict-priority scheduler
// the burst preempts its way in at admission time — low-priority
// decodes are recompute-preempted (their work stays in the prefix
// cache), the burst's TTFT stays interactive, and the preempted
// requests re-enter the queue and still finish: delayed, never
// starved. The same run under the default FCFS scheduler shows the
// burst queueing behind the backlog instead.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"jenga"
)

// serveBurst runs the low-priority backlog plus high-priority burst
// under one scheduler and returns the server's scorecard.
func serveBurst(scheduler jenga.Scheduler) (jenga.ServingReport, int) {
	spec := jenga.Models.Gemma2_2B()
	budget, err := jenga.KVBudget(spec, jenga.H100(), 0)
	if err != nil {
		log.Fatal(err)
	}
	// A small heap: the low-priority backlog must actually fill it.
	mgr, err := jenga.NewManager(jenga.ManagerConfig{
		Spec: spec, CapacityBytes: budget / 160,
		EnablePrefixCache: true, RequestAware: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := jenga.NewServer(jenga.ServerConfig{
		Engine: jenga.EngineConfig{
			Spec: spec, Device: jenga.H100(), Manager: mgr,
			MaxBatchTokens: 1024, MaxPrefills: 2,
		},
		Scheduler: scheduler,
		SLOTTFT:   100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pause-submit-resume brackets the whole workload so the run is
	// deterministic regardless of wall-clock speed.
	srv.Pause()
	gen := jenga.NewWorkloadGen(7)
	low := gen.PrefixGroups(4, 8, 1024, 512) // long decodes: the memory hogs
	hi := gen.PrefixGroups(2, 4, 2048, 32)   // interactive burst, prompts too big for the leftover gap
	var lowStreams []*jenga.Stream
	for i := range low {
		low[i].Arrival = 0
		st, err := srv.Submit(context.Background(), low[i])
		if err != nil {
			log.Fatal(err)
		}
		lowStreams = append(lowStreams, st)
	}
	for i := range hi {
		hi[i].Priority = 5
		hi[i].Arrival = 150 * time.Millisecond // lands on a full engine
		if _, err := srv.Submit(context.Background(), hi[i]); err != nil {
			log.Fatal(err)
		}
	}
	srv.Resume()
	if err := srv.Drain(); err != nil {
		log.Fatal(err)
	}

	preempted := 0
	for _, st := range lowStreams {
		if res, ok := st.Result(); ok && res.Preemptions > 0 {
			preempted++
		}
	}
	return srv.Report(), preempted
}

func main() {
	for _, scheduler := range []jenga.Scheduler{jenga.NewFCFS(), jenga.NewPriority()} {
		rep, preempted := serveBurst(scheduler)
		fmt.Printf("scheduler %s: %d finished, %d failed, %d low-priority streams preempted\n",
			scheduler.Name(), rep.Finished, rep.Failed, preempted)
		for _, pr := range rep.PerPriority {
			fmt.Printf("  priority %d: %2d submitted, %2d finished, TTFT p50 %8v p99 %8v, SLO(100ms) %5.1f%%, preemptions %d\n",
				pr.Priority, pr.Submitted, pr.Finished,
				pr.P50TTFT.Round(time.Millisecond), pr.P99TTFT.Round(time.Millisecond),
				100*pr.SLOAttainment, pr.Preemptions)
		}
	}
	fmt.Println("\nthe strict-priority scheduler admits the burst by recompute-preempting")
	fmt.Println("low-priority decodes: high-priority TTFT drops to interactive range while")
	fmt.Println("every low-priority request still finishes — delayed, never starved.")
}
