// Multi-model serving from one Jenga heap — the §6.1 extension the
// paper leaves as future work: two *independent* models registered in
// one manager via group tags, exchanging memory at large-page
// granularity as the load mix shifts. A static split must reserve for
// each model's peak; the shared heap follows the traffic.
package main

import (
	"fmt"
	"log"

	"jenga"
)

func main() {
	a := jenga.Models.Llama31_8B() // model A: full attention
	b := jenga.Models.Gemma2_9B()  // model B: full + sliding window
	budget := int64(24) << 30      // one device hosting both models' KV

	// Register both models in one spec via tags (the paper's
	// custom_kv_cache registration).
	merged := &jenga.Spec{
		Name: a.Name + "+" + b.Name, Params: a.Params, WeightBytes: 2, HiddenSize: a.HiddenSize,
	}
	for _, g := range a.Groups {
		g.Name, g.Tag = "a:"+g.Name, "A"
		merged.Groups = append(merged.Groups, g)
	}
	for _, g := range b.Groups {
		g.Name, g.Tag = "b:"+g.Name, "B"
		merged.Groups = append(merged.Groups, g)
	}
	shared, err := jenga.NewManager(jenga.ManagerConfig{
		Spec: merged, CapacityBytes: budget, RequestAware: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared heap: %d MiB large pages, groups %v\n",
		shared.Geometry().LargePageBytes>>20, shared.Geometry().SmallPageBytes)

	// A shifting load mix: phase 1 is A-heavy, phase 2 is B-heavy. The
	// shared heap reallocates between the models; a static half-split
	// would cap each phase at half the memory.
	admit := func(tag string, id int, tokens int, tick jenga.Tick) bool {
		seq := &jenga.Sequence{ID: jenga.RequestID(id), Tag: tag, PromptLen: tokens}
		for i := 0; i < tokens; i++ {
			seq.Tokens = append(seq.Tokens, jenga.Token{ID: int32(id*31+i) % 50_000})
		}
		if err := shared.Reserve(seq, tokens, tick); err != nil {
			return false
		}
		shared.Commit(seq, tokens, tick)
		return true
	}

	// Phase 1: model A absorbs nearly the whole device.
	aCount := 0
	for id := 1; ; id++ {
		if !admit("A", id, 8000, 1) {
			break
		}
		aCount++
	}
	uA := shared.Usage()
	fmt.Printf("phase 1 (A-heavy): %d concurrent A requests, A uses %.1f GiB — a half-split would cap at %d\n",
		aCount, gib(uA.PerGroup["a:self"].Used), aCount/2)

	// Phase 2: A's requests drain; B takes over the same large pages.
	for id := 1; id <= aCount; id++ {
		seq := &jenga.Sequence{ID: jenga.RequestID(id), Tag: "A"}
		shared.Release(seq, false)
	}
	bCount := 0
	for id := 10_000; ; id++ {
		if !admit("B", id, 8000, 2) {
			break
		}
		bCount++
	}
	uB := shared.Usage()
	fmt.Printf("phase 2 (B-heavy): %d concurrent B requests, B uses %.1f GiB of the same heap\n",
		bCount, gib(uB.PerGroup["b:full"].Used+uB.PerGroup["b:window"].Used))
	st := shared.Stats()
	fmt.Printf("large pages exchanged between models: %d reclaims, %d evictions\n",
		st.LargeReclaims, st.LargeEvictions)
}

func gib(b int64) float64 { return float64(b) / (1 << 30) }
