// Package jenga is a Go reproduction of "Jenga: Effective Memory
// Management for Serving LLM with Heterogeneity" (SOSP 2025): a
// two-level KV-cache allocator for heterogeneous LLMs — different
// embedding sizes per layer type, and different token-dependency
// patterns (full attention, sliding window, Mamba state, cross
// attention, vision embeddings) — with customizable prefix caching.
//
// The package re-exports the library's public surface:
//
//   - NewManager builds Jenga's two-level LCM allocator for a model
//     described by a Spec (see Models for the paper's evaluation zoo).
//   - NewPagedBaseline builds the vLLM-style PagedAttention manager the
//     paper compares against; both implement Manager.
//   - NewEngine runs a continuous-batching serving simulation over any
//     Manager, on a simulated Device, with workloads from NewWorkloadGen.
//     The engine is an event-driven streaming core; Engine.Run is its
//     batch driver.
//   - NewServer wraps an engine as an online serving surface: Submit
//     returns a per-request Stream of token/finish/preempt events,
//     contexts cancel mid-generation (releasing all KV), a bounded
//     queue applies backpressure, and pluggable AdmissionPolicy sheds
//     by KV demand or SLO estimates. Stream.Fork (and Engine.Fork, and
//     Request.Fanout for workload-declared fan-out) clones a decoding
//     request into branches that share all KV computed so far
//     copy-on-write — parallel sampling, beam-search expansion and
//     agentic fan-out without duplicating the prefix (see Forker).
//   - NewFCFS/NewPriority/NewSJF/NewFairShare build scheduling
//     policies for the engine's pluggable scheduling layer (admission
//     order, preemption victim selection, prefill/decode budgeting);
//     every config surface accepts a Scheduler and defaults to FCFS.
//   - NewSpeculative drives two-model speculative decoding over shared
//     or split heaps.
//   - ManagerConfig.HostTierBytes adds a host-memory KV tier (§8):
//     whole-large-page eviction spills to host instead of discarding,
//     prefix lookups restore spilled blocks over PCIe, and
//     EngineConfig.PreemptMode = PreemptSwap turns preemption into
//     swap-out/swap-in instead of recompute.
//   - NewCluster scales serving out to N engine replicas behind a
//     pluggable request router (round-robin, least-loaded,
//     prefix-affinity); Serve is the deterministic batch path,
//     ServeOnline routes each arrival against live replica state.
//
// Quick start:
//
//	spec := jenga.Models.Gemma2_27B()
//	budget, _ := jenga.KVBudget(spec, jenga.H100(), 0)
//	mgr, _ := jenga.NewManager(jenga.ManagerConfig{
//		Spec: spec, CapacityBytes: budget, EnablePrefixCache: true,
//	})
//	eng, _ := jenga.NewEngine(jenga.EngineConfig{
//		Spec: spec, Device: jenga.H100(), Manager: mgr,
//	})
//	gen := jenga.NewWorkloadGen(42)
//	res, _ := eng.Run(gen.ShareGPT(64))
//	fmt.Printf("%.2f req/s\n", res.ReqPerSec)
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package jenga

import (
	"jenga/internal/baseline"
	"jenga/internal/chaos"
	"jenga/internal/cluster"
	"jenga/internal/core"
	"jenga/internal/engine"
	"jenga/internal/fleet"
	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/sched"
	"jenga/internal/serve"
	"jenga/internal/spec"
	"jenga/internal/workload"
)

// Model description surface.
type (
	// Spec describes a model architecture as KV groups.
	Spec = model.Spec
	// KVGroup is one layer type (kind, layers, bytes per token, ...).
	KVGroup = model.KVGroup
	// Kind is a token-dependency pattern (full, window, mamba, ...).
	Kind = model.Kind
	// TokenScope restricts a group to text or image tokens.
	TokenScope = model.TokenScope
	// VisionSpec describes a multi-modal model's encoder.
	VisionSpec = model.VisionSpec
	// PageGeometry is the compatibility-layer sizing result.
	PageGeometry = model.PageGeometry
	// CompatPolicy selects LCM, GCD or MAX page sizing (§4.4).
	CompatPolicy = model.CompatPolicy
)

// Re-exported Kind values.
const (
	FullAttention   = model.FullAttention
	SlidingWindow   = model.SlidingWindow
	Mamba           = model.Mamba
	CrossAttention  = model.CrossAttention
	VisionEmbedding = model.VisionEmbedding
	PyramidWindow   = model.PyramidWindow

	ScopeAll   = model.ScopeAll
	ScopeText  = model.ScopeText
	ScopeImage = model.ScopeImage

	LCMPage = model.LCMPage
	GCDPage = model.GCDPage
	MaxPage = model.MaxPage
)

// Memory-manager surface.
type (
	// Manager is the KV memory-management contract (Jenga and the
	// PagedAttention baseline both implement it).
	Manager = core.Manager
	// ManagerConfig configures NewManager.
	ManagerConfig = core.Config
	// JengaManager is the paper's two-level manager (extra methods:
	// Stats, Geometry, GroupView, Diagnose).
	JengaManager = core.Jenga
	// Sequence is the manager-facing view of one request.
	Sequence = core.Sequence
	// Token is one sequence element.
	Token = core.Token
	// RequestID identifies a sequence.
	RequestID = core.RequestID
	// Tick is simulated time for LRU ordering.
	Tick = core.Tick
	// Usage is a memory accounting snapshot.
	Usage = core.Usage
	// GroupUsage is the per-layer-type slice of Usage.
	GroupUsage = core.GroupUsage
	// AllocStats counts allocator events.
	AllocStats = core.Stats
	// Policy customizes per-layer-type prefix caching (Fig. 9).
	Policy = core.Policy
	// KeepAlive is the optional Policy extension for always-live head
	// regions (attention sinks).
	KeepAlive = core.KeepAlive
	// GroupSeqView is the read-only view policies evaluate hits on.
	GroupSeqView = core.GroupSeqView
	// OffloadHint is one page an offloading tier should spill (§8).
	OffloadHint = core.OffloadHint
	// TierManager is the optional Manager capability behind the host
	// memory tier: swap-based preemption (SwapOut), per-step transfer
	// draining for the PCIe cost term, and tier statistics.
	// JengaManager implements it; enable the tier with
	// ManagerConfig.HostTierBytes.
	TierManager = core.TierManager
	// TierStats snapshots the host tier's counters (spills, restores,
	// transfer bytes, restored tokens, budget evictions).
	TierStats = core.TierStats
	// Forker is the optional Manager capability behind stream forking:
	// Fork clones a committed sequence into a child sharing every
	// block copy-on-write. JengaManager implements it; Engine.Fork,
	// Stream.Fork and Request.Fanout all require it (and degrade to
	// single-stream serving without it).
	Forker = core.Forker
	// BaselineConfig configures NewPagedBaseline.
	BaselineConfig = baseline.Config
	// PagedBaseline is the vLLM-style homogeneous manager.
	PagedBaseline = baseline.Paged
	// SpecManagers bundles per-model managers for speculative decoding.
	SpecManagers = baseline.Managers
)

// ErrNoSpace is returned when KV memory cannot be found even after
// eviction.
var ErrNoSpace = core.ErrNoSpace

// NewManager builds Jenga's two-level LCM manager (§4, §5).
func NewManager(cfg ManagerConfig) (*JengaManager, error) { return core.New(cfg) }

// NewPagedBaseline builds the vLLM v0.6.3-style PagedAttention manager:
// one page size for every layer, no sliding-window freeing, static
// Mamba partition.
func NewPagedBaseline(cfg BaselineConfig) (*PagedBaseline, error) { return baseline.NewPaged(cfg) }

// NewJengaShared serves a target and a draft model from one Jenga heap
// (§6.1); NewVLLMMax and NewVLLMManual are the §7.4 baselines.
var (
	NewJengaShared = baseline.NewJengaShared
	NewVLLMMax     = baseline.NewVLLMMax
	NewVLLMManual  = baseline.NewVLLMManual
)

// Serving-engine surface.
type (
	// EngineConfig configures NewEngine.
	EngineConfig = engine.Config
	// Engine is the continuous-batching serving simulator.
	Engine = engine.Engine
	// Result aggregates a run's metrics.
	Result = engine.Result
	// MemSample is one memory-timeline point.
	MemSample = engine.MemSample
	// VisionStrategy selects the §6.2 embedding-cache strategy.
	VisionStrategy = engine.VisionStrategy
	// PreemptMode selects recompute- or swap-based preemption.
	PreemptMode = engine.PreemptMode
	// RequestMetrics is one finished request's latency/restore record.
	RequestMetrics = engine.RequestMetrics
)

// Vision strategies (§6.2).
const (
	VisionNone         = engine.VisionNone
	VisionFreeOnDemand = engine.VisionFreeOnDemand
	VisionReuseKV      = engine.VisionReuseKV
)

// Preemption modes: recompute (vLLM-style, the default) or swap (the
// victim's pages move to the manager's host tier and resume by PCIe
// restore instead of recompute — requires a tiered manager, see
// ManagerConfig.HostTierBytes). ParsePreemptMode converts flag
// spellings.
const (
	PreemptRecompute = engine.PreemptRecompute
	PreemptSwap      = engine.PreemptSwap
)

// ParsePreemptMode converts a flag spelling ("recompute", "swap").
// ParsePreemptOption is the unified-grammar equivalent with the
// OptionError shape.
var ParsePreemptMode = engine.ParsePreemptMode

// NewEngine builds a serving simulation.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// Online serving surface (event-driven Server/Stream over the engine's
// streaming core).
type (
	// ServerConfig configures NewServer (wrapped engine config, queue
	// bound, TTFT target).
	ServerConfig = serve.Config
	// Server is the concurrent online serving surface over one engine
	// replica.
	Server = serve.Server
	// Stream is the per-request handle Submit returns; its channel
	// carries the request's scheduler events.
	Stream = serve.Stream
	// StreamResult is a stream's terminal record (state, TTFT, E2E,
	// tokens generated).
	StreamResult = serve.StreamResult
	// StreamState is a stream's terminal state.
	StreamState = serve.StreamState
	// ServingReport is the server-level scorecard (goodput, SLO
	// attainment, shed rate, latency percentiles).
	ServingReport = serve.Report
	// Event is one scheduler occurrence for one request.
	Event = engine.Event
	// EventType classifies an Event.
	EventType = engine.EventType
	// EngineSnapshot is the live scheduler state (queue depths, memory
	// usage) admission and routing decide on.
	EngineSnapshot = engine.Snapshot
	// AdmissionPolicy decides queue-versus-shed at each arrival.
	AdmissionPolicy = engine.AdmissionPolicy
	// AdmissionState is the live state an AdmissionPolicy sees.
	AdmissionState = engine.AdmissionState
	// AdmissionDecision is an AdmissionPolicy verdict.
	AdmissionDecision = engine.AdmissionDecision
	// KVAdmission sheds by estimated KV demand versus live usage.
	KVAdmission = engine.KVAdmission
	// SLOAdmission sheds when queueing estimates bust the TTFT target
	// or the request's own deadline.
	SLOAdmission = engine.SLOAdmission
)

// Stream event types and lifecycle states.
const (
	EventQueued     = engine.EventQueued
	EventFirstToken = engine.EventFirstToken
	EventToken      = engine.EventToken
	EventPreempted  = engine.EventPreempted
	EventFinished   = engine.EventFinished
	EventFailed     = engine.EventFailed
	EventShed       = engine.EventShed
	EventCancelled  = engine.EventCancelled

	AdmitRequest = engine.Admit
	ShedRequest  = engine.Shed

	StreamActive    = serve.StateActive
	StreamFinished  = serve.StateFinished
	StreamFailed    = serve.StateFailed
	StreamShed      = serve.StateShed
	StreamCancelled = serve.StateCancelled
)

// ErrQueueFull (backpressure) and ErrServerClosed are Submit errors.
var (
	ErrQueueFull    = serve.ErrQueueFull
	ErrServerClosed = serve.ErrClosed
)

// NewServer builds an online serving surface over one engine replica
// and starts its scheduler.
func NewServer(cfg ServerConfig) (*Server, error) { return serve.New(cfg) }

// AdmitAll, AdmissionChain and ParseAdmission build admission
// policies; ParseAdmission converts flag spellings ("kv+slo") —
// ParseAdmissionOption is the unified-grammar equivalent with the
// OptionError shape.
var (
	AdmitAll       = engine.AdmitAll
	AdmissionChain = engine.AdmissionChain
	ParseAdmission = engine.ParseAdmission
)

// Scheduling surface (internal/sched): the pluggable policy layer
// behind admission order, preemption victim selection and the
// prefill/decode budget split. EngineConfig, ServerConfig and
// ClusterConfig all accept a Scheduler; nil means FCFS, the
// historical behavior the golden tests pin.
type (
	// Scheduler is the pluggable scheduling policy.
	Scheduler = sched.Scheduler
	// SchedView is the read-only live state a Scheduler decides on.
	SchedView = sched.View
	// SchedReqInfo is the scheduler-visible summary of one request.
	SchedReqInfo = sched.ReqInfo
	// SchedSplit is a step's decode/prefill token-budget split.
	SchedSplit = sched.Split
	// SchedAdmissionPreempter is the optional Scheduler capability
	// reporting whether a policy preempts for blocked admissions.
	SchedAdmissionPreempter = sched.AdmissionPreempter
	// PriorityReport is one priority class's share of a ServingReport.
	PriorityReport = serve.PriorityReport
)

// Built-in schedulers and helpers. NewFCFS is first-come-first-served
// (the default); NewPriority adds strict priority with admission-time
// preemption of lower classes; NewSJF is shortest-remaining-first
// with a deadline-aware tiebreak; NewFairShare serves tenant groups
// by weighted max-min share. ParseScheduler converts flag spellings
// ("fcfs", "priority", "sjf", "fairshare", optional ":<frac>" prefill
// reserve) — ParseSchedulerOption is the unified-grammar equivalent
// with the OptionError shape; WithPrefillReserve adds the
// chunked-prefill budget reserve to any scheduler; CompareSchedule is
// the shared priority/arrival comparator custom policies can build
// on.
var (
	NewFCFS            = sched.NewFCFS
	NewPriority        = sched.NewPriority
	NewSJF             = sched.NewSJF
	NewFairShare       = sched.NewFairShare
	ParseScheduler     = sched.ParseScheduler
	WithPrefillReserve = sched.WithPrefillReserve
	CompareSchedule    = sched.Compare
)

// Cluster serving surface (scale-out: N engine replicas behind a
// router).
type (
	// ClusterConfig configures NewCluster.
	ClusterConfig = cluster.Config
	// Cluster runs N engine replicas concurrently behind a Router.
	Cluster = cluster.Cluster
	// ClusterResult aggregates a fleet run (throughput, p50/p99
	// latency, fleet-wide prefix-hit rate, load imbalance).
	ClusterResult = cluster.Result
	// ClusterReplicaResult is one replica's share of a cluster run.
	ClusterReplicaResult = cluster.ReplicaResult
	// Router decides which replica serves each request (pluggable).
	Router = cluster.Router
	// RouterPolicy selects a built-in Router.
	RouterPolicy = cluster.RouterPolicy
	// ReplicaLoad is the router-visible per-replica load state.
	ReplicaLoad = cluster.Load
)

// Built-in router policies.
const (
	RoundRobin     = cluster.RoundRobin
	LeastLoaded    = cluster.LeastLoaded
	PrefixAffinity = cluster.PrefixAffinity
)

// NewCluster builds a multi-replica serving cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// NewRouter builds a built-in router; ParseRouterPolicy converts a
// flag spelling ("roundrobin", "leastloaded", "affinity") —
// ParseRouterOption is the unified-grammar equivalent with the
// OptionError shape.
var (
	NewRouter         = cluster.NewRouter
	ParseRouterPolicy = cluster.ParsePolicy
)

// Fleet memory surface (cluster-wide KV store and live request
// migration): FleetPolicy on ClusterConfig.Fleet turns on the fleet
// prefix store (peer replicas serve each other's spilled prefixes over
// the interconnect instead of recomputing), live migration (draining
// or rebalancing replicas hand running requests to survivors mid-
// stream), or both. FleetDirectory is the underlying prefix directory
// — which replica's host tier holds which prefix blocks — and PageSet
// the serialized page-set currency replicas exchange (exported by
// ExportPrefix, accepted by ImportPrefix on a tiered Manager).
type (
	// FleetPolicy configures the fleet store, migration and drain/
	// rebalance schedule on a cluster.
	FleetPolicy = cluster.FleetPolicy
	// FleetDirectory maps prefix blocks to the replicas holding them.
	FleetDirectory = fleet.Directory
	// FleetStore couples a FleetDirectory to every replica's host
	// tier via tier observers.
	FleetStore = fleet.Store
	// PageSet is a serializable set of host-tier pages for one prefix
	// — the unit of peer transfer and migration state.
	PageSet = core.PageSet
)

// NewFleetDirectory builds an empty fleet prefix directory;
// NewFleetStore builds a store over n replicas.
var (
	NewFleetDirectory = fleet.NewDirectory
	NewFleetStore     = fleet.NewStore
)

// Chaos surface (deterministic fault injection and crash recovery):
// a ChaosPlan is a seeded, reproducible schedule of replica crashes,
// restarts, degraded-bandwidth and straggler windows plus peer-
// transfer failure rates; ChaosPolicy on ClusterConfig.Chaos attaches
// one to a cluster and toggles the recovery machinery (directory
// invalidation, bounded transfer retries, re-dispatch of crashed
// replicas' requests to survivors).
type (
	// ChaosPlan is the seeded fault schedule (build with NewChaosPlan,
	// chain Crash/Restart/Degrade/Straggle).
	ChaosPlan = chaos.Plan
	// ChaosEvent is one scheduled fault.
	ChaosEvent = chaos.Event
	// ChaosPolicy attaches a plan to a cluster and selects recovery.
	ChaosPolicy = cluster.ChaosPolicy
	// ReplicaHealth is a replica's liveness as routing sees it under a
	// plan (Healthy, Sick inside a fault window, Dead after a crash).
	ReplicaHealth = cluster.Health
)

// NewChaosPlan builds an empty fault plan on a seed; same seed, same
// faults — chaos runs are reproducible bit-for-bit.
var NewChaosPlan = chaos.NewPlan

// Replica health states under a chaos plan.
const (
	ReplicaHealthy = cluster.Healthy
	ReplicaSick    = cluster.Sick
	ReplicaDead    = cluster.Dead
)

// PrefixHash hashes a prompt's first n tokens with the prefix-cache
// block chain (custom routers key consistent hashing on it).
var PrefixHash = core.PrefixHash

// Device and cost-model surface.
type (
	// Device is a simulated GPU.
	Device = gpu.Device
	// CostModel converts step work into simulated time.
	CostModel = gpu.CostModel
	// StepWork describes one step's computation.
	StepWork = gpu.StepWork
)

// H100 and L4 are the paper's evaluation platforms.
var (
	H100 = gpu.H100
	L4   = gpu.L4
)

// KVBudget returns the KV byte budget for a model on a device.
var KVBudget = gpu.KVBudget

// Workload surface.
type (
	// Request is one serving request.
	Request = workload.Request
	// WorkloadGen generates the paper's synthetic datasets.
	WorkloadGen = workload.Gen
	// Article is a long document in the arXiv-QA pool.
	Article = workload.Article
)

// NewWorkloadGen creates a deterministic workload generator.
func NewWorkloadGen(seed int64) *WorkloadGen { return workload.NewGen(seed) }

// AllAtOnce zeroes arrival times (offline batch serving);
// MergeStreams combines arrival streams in time order; SplitByGroup
// partitions a stream by its prefix-sharing labels; SetDeadlines
// assigns a uniform end-to-end SLO budget; NaiveFanOut lowers fan-out
// requests (Request.Fanout) to independent per-branch requests — the
// workload an engine without copy-on-write forking must serve.
var (
	AllAtOnce    = workload.AllAtOnce
	MergeStreams = workload.Merge
	SplitByGroup = workload.SplitByGroup
	SetDeadlines = workload.SetDeadlines
	NaiveFanOut  = workload.NaiveFanOut
)

// Speculative-decoding surface (§6.1, Fig. 19).
type (
	// SpecConfig configures NewSpeculative.
	SpecConfig = spec.Config
	// SpecDriver runs two-model speculative decoding.
	SpecDriver = spec.Driver
	// SpecResult aggregates a speculative run's metrics.
	SpecResult = spec.Result
)

// NewSpeculative builds a speculative-decoding driver.
func NewSpeculative(cfg SpecConfig) (*SpecDriver, error) { return spec.New(cfg) }

// Models exposes the paper's evaluation zoo (Table 1 and Figs. 18/19).
var Models = struct {
	Llama31_8B       func() *Spec
	Llama31_70B      func() *Spec
	Llama32Vision11B func() *Spec
	Gemma2_27B       func() *Spec
	Gemma2_9B        func() *Spec
	Gemma2_2B        func() *Spec
	Ministral8B      func() *Spec
	MinistralDraft1B func() *Spec
	Jamba52B         func() *Spec
	CharacterAI70B   func() *Spec
	CharacterAI8B    func() *Spec
	PyramidKV70B     func() *Spec
	PyramidKV8B      func() *Spec
	LLaVAOneVision7B func() *Spec
	InternVL2_8B     func() *Spec
	Phi3Vision4B     func() *Spec
	Paligemma2_10B   func() *Spec
	Llama32_1B       func() *Spec
	ByName           func(string) (*Spec, error)
	All              func() []*Spec
}{
	Llama31_8B:       model.Llama31_8B,
	Llama31_70B:      model.Llama31_70B,
	Llama32Vision11B: model.Llama32Vision11B,
	Gemma2_27B:       model.Gemma2_27B,
	Gemma2_9B:        model.Gemma2_9B,
	Gemma2_2B:        model.Gemma2_2B,
	Ministral8B:      model.Ministral8B,
	MinistralDraft1B: model.MinistralDraft1B,
	Jamba52B:         model.Jamba52B,
	CharacterAI70B:   model.CharacterAI70B,
	CharacterAI8B:    model.CharacterAI8B,
	PyramidKV70B:     model.PyramidKV70B,
	PyramidKV8B:      model.PyramidKV8B,
	LLaVAOneVision7B: model.LLaVAOneVision7B,
	InternVL2_8B:     model.InternVL2_8B,
	Phi3Vision4B:     model.Phi3Vision4B,
	Paligemma2_10B:   model.Paligemma2_10B,
	Llama32_1B:       model.Llama32_1B,
	ByName:           model.ByName,
	All:              model.All,
}
