# Targets mirror what .github/workflows/ci.yml runs.

GO ?= go

# Pinned staticcheck (matches the CI step; bump both together).
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: build test race bench bench-json bench-scale bench-smoke chaos-smoke scale-smoke fuzz lint staticcheck fmt vet ci

build:
	$(GO) build ./...

# Tier-1 verify (ROADMAP.md): build plus the full test suite.
test: build
	$(GO) test ./...

# Race pass; -short skips the full-scale experiment replays.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable scorecards, mirrored by the CI artifact uploads:
# BENCH_serving.json is the online streaming benchmark under a
# 4-replica memory-pressured overload (0.25 GiB per-replica KV budget)
# with kv+slo admission — one row per (scheduling policy, preempt
# mode) pair on the identical seeded stream, so every policy's
# swap-vs-recompute tier tradeoff (tier hit rate, recomputed tokens,
# restore p99) is tracked across PRs — plus a fanout section comparing
# copy-on-write forked branches against naive independent branches
# (per-branch KV footprint and branch TTFT) and a fleet section
# comparing the fleet-wide KV store against local recompute under
# replica churn and migration against shedding under a mid-stream
# scale-down; BENCH_core.json is the allocator/engine hot-path
# trajectory (ns/op, allocs/op, sim anchor — the baseline section in
# the committed file is preserved across runs). The -stream, -fanout
# and fleet runs each rewrite their own section of BENCH_serving.json
# and preserve the others'.
bench-json:
	$(GO) run ./cmd/jengabench -stream -replicas 4 -requests 480 -rate 600 \
		-slo-ttft 250ms -deadline 2s -admission kv+slo -sched all \
		-preempt all -host-gb 2 -kv-gb 0.25 \
		-bench-json BENCH_serving.json
	$(GO) run ./cmd/jengabench -fanout -kv-gb 2 -bench-json BENCH_serving.json
	$(GO) run ./cmd/jengabench -fleet-store -migrate -replicas 4 -requests 480 \
		-rate 70 -prefix-len 1024 -slo-ttft 250ms -deadline 2s \
		-drain-after 3s -host-gb 2 -kv-gb 0.25 \
		-bench-json BENCH_serving.json
	$(GO) run ./cmd/jengabench -faults -replicas 4 -requests 480 \
		-rate 70 -prefix-len 1024 -slo-ttft 500ms -deadline 6s \
		-host-gb 2 -kv-gb 0.25 \
		-bench-json BENCH_serving.json
	$(GO) run ./cmd/jengabench -bench-core -bench-json BENCH_core.json

# Full-size scale benchmark: one million streamed requests on a
# 16-replica fleet through ServeStream, swept across shard counts,
# with a serial ServeOnline baseline pair — writes the scale section
# of BENCH_serving.json. Several minutes of wall time, so it is not
# part of bench-json/CI (every other mode preserves the committed
# scale section); rerun it when the streaming or sharding paths
# change.
bench-scale:
	$(GO) run ./cmd/jengabench -scale-serve -bench-json BENCH_serving.json

# Benchmark smoke: every benchmark must still run (one iteration each),
# so the committed perf trajectory cannot rot.
bench-smoke:
	$(GO) test -run NONE -bench=. -benchtime=1x .

# Chaos smoke (part of `make ci`): a short seeded crash-restart
# schedule with peer-transfer faults runs under the race detector —
# the recovery path (CrashOut/CrashReset, directory invalidation,
# redispatch, bounded retry) must stay deterministic and race-free.
chaos-smoke:
	$(GO) run -race ./cmd/jengabench -faults -replicas 3 -requests 120 \
		-rate 150 -prefix-len 512 -host-gb 1 -kv-gb 0.25

# Scale smoke (part of `make ci`): a ~100k-request streamed ServeStream
# pass over the 16-replica fleet under the race detector, asserting the
# workload is never materialized (peak live heap bounded far below the
# materialized slice's cost) and every request is served. -short skips
# it elsewhere so `make race` doesn't run it twice.
scale-smoke:
	$(GO) test -race -run TestScaleSmoke -v ./internal/bench/

# Timed fuzz over the core free pool, the host-tier/map-reference
# differential, the fork/CoW lifecycle and the fleet-directory/
# map-reference differential (the CI fuzz step): the seeded corpora
# always run as part of `make test`; this explores beyond them.
# `go test -fuzz` takes one target per run, so each gets its own
# budget.
fuzz:
	$(GO) test -run NONE -fuzz FuzzFreePool -fuzztime 5s ./internal/core
	$(GO) test -run NONE -fuzz FuzzHostTier -fuzztime 5s ./internal/core
	$(GO) test -run NONE -fuzz FuzzForkLifecycle -fuzztime 5s ./internal/core
	$(GO) test -run NONE -fuzz FuzzFleetDirectory -fuzztime 5s ./internal/fleet

# jengalint: the repo's own analyzers (internal/analysis) — the
# machine-enforced determinism contract (DESIGN.md): no map-order
# dependence in golden-affecting packages, no wall-clock/global-rand/
# env reads in sim packages, goroutine confinement, the //jenga:hotpath
# zero-alloc contract, and comma-ok capability assertions. Builds from
# the module itself (standard library only), so it runs fully offline
# and is part of `make ci`. It is a standalone driver rather than a
# `go vet -vettool` plugin because vet's unitchecker protocol needs
# golang.org/x/tools, which this module deliberately does not depend
# on.
lint:
	$(GO) run ./cmd/jengalint ./...

# Static analysis beyond vet and jengalint, pinned so local runs and CI
# agree. `go run pkg@ver` needs module-proxy access, so staticcheck is
# the network-optional extra: CI runs it, offline environments get the
# `make vet` + `make lint` coverage instead.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

ci: vet lint build test race chaos-smoke scale-smoke
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "files need gofmt:"; echo "$$out"; exit 1; fi
