# Targets mirror what .github/workflows/ci.yml runs.

GO ?= go

.PHONY: build test race bench bench-json bench-smoke fmt vet ci

build:
	$(GO) build ./...

# Tier-1 verify (ROADMAP.md): build plus the full test suite.
test: build
	$(GO) test ./...

# Race pass; -short skips the full-scale experiment replays.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable scorecards, mirrored by the CI artifact uploads:
# BENCH_serving.json is the online streaming benchmark under a
# 4-replica overload with kv+slo admission; BENCH_core.json is the
# allocator/engine hot-path trajectory (ns/op, allocs/op, sim anchor —
# the baseline section in the committed file is preserved across runs).
bench-json:
	$(GO) run ./cmd/jengabench -stream -replicas 4 -requests 480 -rate 600 \
		-slo-ttft 250ms -deadline 2s -admission kv+slo \
		-bench-json BENCH_serving.json
	$(GO) run ./cmd/jengabench -bench-core -bench-json BENCH_core.json

# Benchmark smoke: every benchmark must still run (one iteration each),
# so the committed perf trajectory cannot rot.
bench-smoke:
	$(GO) test -run NONE -bench=. -benchtime=1x .

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

ci: vet build test race
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "files need gofmt:"; echo "$$out"; exit 1; fi
