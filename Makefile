# Targets mirror what .github/workflows/ci.yml runs.

GO ?= go

.PHONY: build test race bench fmt vet ci

build:
	$(GO) build ./...

# Tier-1 verify (ROADMAP.md): build plus the full test suite.
test: build
	$(GO) test ./...

# Race pass; -short skips the full-scale experiment replays.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem .

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

ci: vet build test race
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "files need gofmt:"; echo "$$out"; exit 1; fi
