# Targets mirror what .github/workflows/ci.yml runs.

GO ?= go

# Pinned staticcheck (matches the CI step; bump both together).
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: build test race bench bench-json bench-smoke fuzz staticcheck fmt vet ci

build:
	$(GO) build ./...

# Tier-1 verify (ROADMAP.md): build plus the full test suite.
test: build
	$(GO) test ./...

# Race pass; -short skips the full-scale experiment replays.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable scorecards, mirrored by the CI artifact uploads:
# BENCH_serving.json is the online streaming benchmark under a
# 4-replica overload with kv+slo admission, one row per scheduling
# policy (-sched all) on the identical seeded stream; BENCH_core.json
# is the allocator/engine hot-path trajectory (ns/op, allocs/op, sim
# anchor — the baseline section in the committed file is preserved
# across runs).
bench-json:
	$(GO) run ./cmd/jengabench -stream -replicas 4 -requests 480 -rate 600 \
		-slo-ttft 250ms -deadline 2s -admission kv+slo -sched all \
		-bench-json BENCH_serving.json
	$(GO) run ./cmd/jengabench -bench-core -bench-json BENCH_core.json

# Benchmark smoke: every benchmark must still run (one iteration each),
# so the committed perf trajectory cannot rot.
bench-smoke:
	$(GO) test -run NONE -bench=. -benchtime=1x .

# Timed fuzz over the core free pool (the CI fuzz step): the seeded
# corpus always runs as part of `make test`; this explores beyond it.
fuzz:
	$(GO) test -run NONE -fuzz FuzzFreePool -fuzztime 5s ./internal/core

# Static analysis, pinned so local runs and CI agree. `go run pkg@ver`
# needs module-proxy access; offline environments get the plain-vet
# coverage from `make vet` instead.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

ci: vet build test race
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "files need gofmt:"; echo "$$out"; exit 1; fi
