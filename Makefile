# Targets mirror what .github/workflows/ci.yml runs.

GO ?= go

.PHONY: build test race bench bench-json fmt vet ci

build:
	$(GO) build ./...

# Tier-1 verify (ROADMAP.md): build plus the full test suite.
test: build
	$(GO) test ./...

# Race pass; -short skips the full-scale experiment replays.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable serving scorecard (BENCH_serving.json), mirrored by
# the CI artifact upload: the online streaming benchmark under a
# 4-replica overload with kv+slo admission.
bench-json:
	$(GO) run ./cmd/jengabench -stream -replicas 4 -requests 480 -rate 600 \
		-slo-ttft 250ms -deadline 2s -admission kv+slo \
		-bench-json BENCH_serving.json

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

ci: vet build test race
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "files need gofmt:"; echo "$$out"; exit 1; fi
