package jenga_test

// One benchmark per table and figure of the paper's evaluation (§7),
// plus allocator micro-benchmarks. Each figure benchmark executes the
// corresponding experiment runner from internal/experiments at reduced
// scale and reports simulated-throughput metrics; run
//
//	go test -bench=. -benchmem
//
// for the whole suite, or cmd/jengabench for full-scale tables.

import (
	"io"
	"testing"

	"jenga"
	"jenga/internal/experiments"
)

// benchOpt keeps figure benchmarks fast enough for -bench=. runs.
var benchOpt = experiments.Options{Scale: 0.25, Seed: 42}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r(io.Discard, benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWasteAnalysis regenerates the §3.2 fragmentation table
// (mllama 79.6%, Gemma-2 25%, Ministral 56.25%).
func BenchmarkWasteAnalysis(b *testing.B) { runExperiment(b, "waste") }

// BenchmarkTable1 regenerates the Table 1 model/dataset matrix.
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig13Throughput regenerates the end-to-end throughput table
// on both devices (vLLM vs Jenga across seven models).
func BenchmarkFig13Throughput(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14Latency regenerates the latency-vs-rate sweep (mllama).
func BenchmarkFig14Latency(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15BatchSize regenerates the decode-batch timeline
// (Ministral, 20 long-document requests).
func BenchmarkFig15BatchSize(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16Fragmentation regenerates the memory-breakdown
// timelines (static and dynamic traces).
func BenchmarkFig16Fragmentation(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkFig17PrefixCache regenerates the prefix-caching sweep over
// article-pool sizes.
func BenchmarkFig17PrefixCache(b *testing.B) { runExperiment(b, "fig17") }

// BenchmarkFig18VisionCache regenerates the VLM chunked-prefill
// comparison (vision embedding cache on four models).
func BenchmarkFig18VisionCache(b *testing.B) { runExperiment(b, "fig18") }

// BenchmarkFig19Speculative regenerates the speculative-decoding
// comparison (vLLM-max / vLLM-manual / Jenga shared heap).
func BenchmarkFig19Speculative(b *testing.B) { runExperiment(b, "fig19") }

// BenchmarkAblationPageSize regenerates the §4.4 LCM/GCD/MAX ablation.
func BenchmarkAblationPageSize(b *testing.B) { runExperiment(b, "ablation-page") }

// BenchmarkAblationRequestAware regenerates the §4.3 / Fig. 8
// request-aware placement ablation.
func BenchmarkAblationRequestAware(b *testing.B) { runExperiment(b, "ablation-reqaware") }

// BenchmarkAblationCheckpoint regenerates the §5.3 Mamba
// checkpoint-interval sweep.
func BenchmarkAblationCheckpoint(b *testing.B) { runExperiment(b, "ablation-ckpt") }

// --- cluster routing ----------------------------------------------------

// BenchmarkClusterRouting compares the three routing policies on a
// 4-replica fleet serving a shared-prefix workload (the tentpole
// cluster comparison: prefix-affinity vs load-oblivious and
// load-balanced routing).
func BenchmarkClusterRouting(b *testing.B) {
	for _, policy := range []jenga.RouterPolicy{
		jenga.RoundRobin, jenga.LeastLoaded, jenga.PrefixAffinity,
	} {
		b.Run(policy.String(), func(b *testing.B) {
			gen := jenga.NewWorkloadGen(42)
			reqs := gen.PrefixGroups(15, 12, 1024, 128)
			jenga.AllAtOnce(reqs)
			b.ReportAllocs()
			var hit float64
			for i := 0; i < b.N; i++ {
				c, err := jenga.NewCluster(jenga.ClusterConfig{
					Spec:     jenga.Models.Gemma2_2B(),
					Replicas: 4,
					Policy:   policy,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := c.Serve(reqs)
				if err != nil {
					b.Fatal(err)
				}
				hit = res.HitRate
			}
			b.ReportMetric(100*hit, "hit%")
		})
	}
}

// --- allocator micro-benchmarks -----------------------------------------

// benchSpec is a two-type model exercising the LCM allocator.
func benchSpec() *jenga.Spec {
	return &jenga.Spec{
		Name: "bench", Params: 1_000_000, WeightBytes: 2, HiddenSize: 64,
		Groups: []jenga.KVGroup{
			{Name: "self", Kind: jenga.FullAttention, Layers: 3, BytesPerToken: 128, Scope: jenga.ScopeText},
			{Name: "cross", Kind: jenga.CrossAttention, Layers: 2, BytesPerToken: 128, Scope: jenga.ScopeImage},
		},
	}
}

// BenchmarkAllocatorChurn measures reserve/commit/release throughput on
// the two-level allocator (tokens per op).
func BenchmarkAllocatorChurn(b *testing.B) {
	mgr, err := jenga.NewManager(jenga.ManagerConfig{
		Spec: benchSpec(), CapacityBytes: 64 << 20, TokensPerPage: 16, RequestAware: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	const tokens = 512
	seq := &jenga.Sequence{ID: 1}
	for i := 0; i < tokens; i++ {
		seq.Tokens = append(seq.Tokens, jenga.Token{ID: int32(i + 1), Image: i%3 == 0})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq.ID = jenga.RequestID(i + 1)
		if err := mgr.Reserve(seq, tokens, jenga.Tick(i)); err != nil {
			b.Fatal(err)
		}
		mgr.Commit(seq, tokens, jenga.Tick(i))
		mgr.Release(seq, false)
	}
	b.ReportMetric(float64(tokens), "tokens/op")
}

// BenchmarkPrefixLookup measures cache-hit lookup over a long cached
// prefix (the admission-path cost).
func BenchmarkPrefixLookup(b *testing.B) {
	mgr, err := jenga.NewManager(jenga.ManagerConfig{
		Spec: benchSpec(), CapacityBytes: 256 << 20, TokensPerPage: 16,
		EnablePrefixCache: true, RequestAware: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	const tokens = 16_384
	seq := &jenga.Sequence{ID: 1, PromptLen: tokens}
	for i := 0; i < tokens; i++ {
		seq.Tokens = append(seq.Tokens, jenga.Token{ID: int32(i%50_000 + 1)})
	}
	if err := mgr.Reserve(seq, tokens, 1); err != nil {
		b.Fatal(err)
	}
	mgr.Commit(seq, tokens, 1)
	mgr.Release(seq, true)
	probe := &jenga.Sequence{ID: 2, PromptLen: tokens, Tokens: seq.Tokens}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mgr.Lookup(probe) == 0 {
			b.Fatal("expected a cache hit")
		}
	}
	b.ReportMetric(tokens, "tokens/op")
}

// BenchmarkEvictionPressure measures allocation under continuous
// eviction (the §5.4 step-3/5 paths).
func BenchmarkEvictionPressure(b *testing.B) {
	mgr, err := jenga.NewManager(jenga.ManagerConfig{
		Spec: benchSpec(), CapacityBytes: 1 << 20, TokensPerPage: 16,
		EnablePrefixCache: true, RequestAware: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	const tokens = 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := &jenga.Sequence{ID: jenga.RequestID(i + 1)}
		for j := 0; j < tokens; j++ {
			seq.Tokens = append(seq.Tokens, jenga.Token{ID: int32((i*31 + j) % 50_000)})
		}
		if err := mgr.Reserve(seq, tokens, jenga.Tick(i)); err != nil {
			b.Fatal(err)
		}
		mgr.Commit(seq, tokens, jenga.Tick(i))
		mgr.Release(seq, true) // cached → the next iteration must evict
	}
}
