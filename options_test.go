package jenga_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"jenga"
)

func TestParseSchedulerOption(t *testing.T) {
	for _, spec := range []string{"", "fcfs", "priority", "sjf", "fairshare", "FCFS", " sjf ", "fairshare:0.25", "sjf:0"} {
		s, err := jenga.ParseSchedulerOption(spec)
		if err != nil || s == nil {
			t.Errorf("ParseSchedulerOption(%q) = %v, %v", spec, s, err)
		}
	}
	for _, spec := range []string{"lifo", "fcfs+sjf", "sjf:1.5", "sjf:x", "fairshare:-0.1"} {
		if _, err := jenga.ParseSchedulerOption(spec); err == nil {
			t.Errorf("ParseSchedulerOption(%q) should fail", spec)
		}
	}
}

func TestParseAdmissionOption(t *testing.T) {
	for _, spec := range []string{"", "none"} {
		a, err := jenga.ParseAdmissionOption(spec, time.Second)
		if err != nil || a != nil {
			t.Errorf("ParseAdmissionOption(%q) = %v, %v, want nil policy", spec, a, err)
		}
	}
	for _, spec := range []string{"kv", "slo", "kv+slo", "KV + SLO"} {
		a, err := jenga.ParseAdmissionOption(spec, time.Second)
		if err != nil || a == nil {
			t.Errorf("ParseAdmissionOption(%q) = %v, %v", spec, a, err)
		}
	}
	for _, spec := range []string{"latency", "kv+xyz", "kv:3"} {
		if _, err := jenga.ParseAdmissionOption(spec, time.Second); err == nil {
			t.Errorf("ParseAdmissionOption(%q) should fail", spec)
		}
	}
}

func TestParsePreemptOption(t *testing.T) {
	if m, err := jenga.ParsePreemptOption(""); err != nil || m != jenga.PreemptRecompute {
		t.Errorf("empty = %v, %v", m, err)
	}
	if m, err := jenga.ParsePreemptOption("swap"); err != nil || m != jenga.PreemptSwap {
		t.Errorf("swap = %v, %v", m, err)
	}
	if _, err := jenga.ParsePreemptOption("discard"); err == nil {
		t.Error("discard should fail")
	}
}

func TestParseRouterOption(t *testing.T) {
	cases := map[string]jenga.RouterPolicy{
		"roundrobin": jenga.RoundRobin, "rr": jenga.RoundRobin,
		"leastloaded": jenga.LeastLoaded, "ll": jenga.LeastLoaded,
		"affinity": jenga.PrefixAffinity, "prefix": jenga.PrefixAffinity, "": jenga.PrefixAffinity,
	}
	for spec, want := range cases {
		p, err := jenga.ParseRouterOption(spec)
		if err != nil || p != want {
			t.Errorf("ParseRouterOption(%q) = %v, %v, want %v", spec, p, err, want)
		}
	}
	if _, err := jenga.ParseRouterOption("random"); err == nil {
		t.Error("random should fail")
	}
}

// TestOptionErrorShape: every parser rejects through the one error
// shape with the one message format.
func TestOptionErrorShape(t *testing.T) {
	cases := []struct {
		kind  string
		parse func(string) error
	}{
		{"scheduler", func(s string) error { _, err := jenga.ParseSchedulerOption(s); return err }},
		{"admission", func(s string) error { _, err := jenga.ParseAdmissionOption(s, time.Second); return err }},
		{"preempt", func(s string) error { _, err := jenga.ParsePreemptOption(s); return err }},
		{"router", func(s string) error { _, err := jenga.ParseRouterOption(s); return err }},
	}
	for _, c := range cases {
		err := c.parse("bogus-option")
		if err == nil {
			t.Fatalf("%s: bogus spelling accepted", c.kind)
		}
		var oe *jenga.OptionError
		if !errors.As(err, &oe) {
			t.Fatalf("%s: error is %T, want *OptionError", c.kind, err)
		}
		if oe.Kind != c.kind || oe.Input != "bogus-option" || oe.Want == "" {
			t.Errorf("%s: fields = %+v", c.kind, oe)
		}
		want := fmt.Sprintf("jenga: bad %s option %q (want %s)", oe.Kind, oe.Input, oe.Want)
		if err.Error() != want {
			t.Errorf("%s: message %q, want %q", c.kind, err.Error(), want)
		}
	}
}
