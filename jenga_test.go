package jenga_test

// Black-box tests of the public API facade: everything a downstream
// user touches must work through the root package alone.

import (
	"context"
	"errors"
	"testing"
	"time"

	"jenga"
)

func TestModelsZoo(t *testing.T) {
	all := jenga.Models.All()
	if len(all) < 15 {
		t.Fatalf("zoo has %d models, want ≥ 15", len(all))
	}
	spec, err := jenga.Models.ByName("jamba")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.IsHeterogeneous() {
		t.Error("jamba should be heterogeneous")
	}
	if _, err := jenga.Models.ByName("missing"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestPublicManagerLifecycle(t *testing.T) {
	spec := jenga.Models.Gemma2_9B()
	mgr, err := jenga.NewManager(jenga.ManagerConfig{
		Spec: spec, CapacityBytes: 1 << 30, EnablePrefixCache: true, RequestAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := &jenga.Sequence{ID: 1, PromptLen: 1000}
	for i := 0; i < 1000; i++ {
		seq.Tokens = append(seq.Tokens, jenga.Token{ID: int32(i + 1)})
	}
	if err := mgr.Reserve(seq, 1000, 1); err != nil {
		t.Fatal(err)
	}
	mgr.Commit(seq, 1000, 1)
	u := mgr.Usage()
	if u.Used == 0 {
		t.Error("expected used memory")
	}
	if u.Used+u.Cached+u.Wasted+u.Free != mgr.Capacity() {
		t.Error("conservation violated through public API")
	}
	mgr.Release(seq, true)
	probe := &jenga.Sequence{ID: 2, PromptLen: 1000, Tokens: seq.Tokens}
	if hit := mgr.Lookup(probe); hit == 0 {
		t.Error("expected a prefix hit")
	}
}

func TestPublicBaselineAndBudget(t *testing.T) {
	spec := jenga.Models.Llama31_8B()
	budget, err := jenga.KVBudget(spec, jenga.H100(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if budget <= 0 {
		t.Fatal("budget must be positive")
	}
	if _, err := jenga.KVBudget(jenga.Models.Jamba52B(), jenga.L4(), 0); err == nil {
		t.Error("jamba on L4 should OOM")
	}
	mgr, err := jenga.NewPagedBaseline(jenga.BaselineConfig{Spec: spec, CapacityBytes: 1 << 28})
	if err != nil {
		t.Fatal(err)
	}
	seq := &jenga.Sequence{ID: 5, Tokens: []jenga.Token{{ID: 1}, {ID: 2}}}
	if err := mgr.Reserve(seq, 2, 1); err != nil {
		t.Fatal(err)
	}
	mgr.Commit(seq, 2, 1)
	mgr.Release(seq, false)
}

func TestPublicEngineRun(t *testing.T) {
	spec := jenga.Models.CharacterAI8B()
	mgr, err := jenga.NewManager(jenga.ManagerConfig{
		Spec: spec, CapacityBytes: 1 << 30, RequestAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := jenga.Device{Name: "test", MemBytes: 1 << 32, FLOPS: 50e12, MemBW: 500e9}
	eng, err := jenga.NewEngine(jenga.EngineConfig{
		Spec: spec, Device: dev, Manager: mgr, MaxBatchTokens: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := jenga.NewWorkloadGen(3)
	reqs := g.MMLUPro(8, 128)
	for i := range reqs {
		if len(reqs[i].Prompt) > 500 {
			reqs[i].Prompt = reqs[i].Prompt[:500]
		}
		reqs[i].OutputLen = 8
	}
	jenga.AllAtOnce(reqs)
	res, err := eng.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != 8 {
		t.Errorf("finished %d of 8", res.Finished)
	}
	if res.ReqPerSec <= 0 {
		t.Error("throughput must be positive")
	}
}

func TestPublicClusterServe(t *testing.T) {
	g := jenga.NewWorkloadGen(9)
	reqs := g.PrefixGroups(7, 6, 256, 32)
	jenga.AllAtOnce(reqs)
	c, err := jenga.NewCluster(jenga.ClusterConfig{
		Spec:          jenga.Models.Gemma2_2B(),
		Replicas:      4,
		Policy:        jenga.PrefixAffinity,
		CapacityBytes: 256 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != len(reqs) {
		t.Errorf("finished %d of %d", res.Finished, len(reqs))
	}
	if res.HitRate <= 0 {
		t.Error("shared-prefix workload must hit the prefix cache")
	}
	if len(res.PerReplica) != 4 {
		t.Errorf("PerReplica has %d entries, want 4", len(res.PerReplica))
	}
	// Same prefix hash → same replica, via the exported hash.
	h1 := jenga.PrefixHash(reqs[0].Prompt, 256)
	h7 := jenga.PrefixHash(reqs[7].Prompt, 256) // same group, next round
	if reqs[0].Group == reqs[7].Group && h1 != h7 {
		t.Error("shared prefixes must share PrefixHash")
	}
	if got := len(jenga.SplitByGroup(reqs)); got != 7 {
		t.Errorf("SplitByGroup found %d groups, want 7", got)
	}
}

func TestPublicOnlineServing(t *testing.T) {
	spec := jenga.Models.Gemma2_2B()
	mgr, err := jenga.NewManager(jenga.ManagerConfig{
		Spec: spec, CapacityBytes: 256 << 20, EnablePrefixCache: true, RequestAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := jenga.NewServer(jenga.ServerConfig{
		Engine: jenga.EngineConfig{
			Spec: spec, Device: jenga.H100(), Manager: mgr,
			Admission: jenga.AdmissionChain(jenga.KVAdmission{}, jenga.SLOAdmission{TTFT: time.Second}),
		},
		SLOTTFT: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := jenga.NewWorkloadGen(9)
	reqs := g.PrefixGroups(3, 4, 256, 32)
	jenga.SetDeadlines(reqs, 30*time.Second)
	var streams []*jenga.Stream
	for _, r := range reqs {
		st, err := srv.Submit(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, st)
	}
	for _, st := range streams {
		res, err := st.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.State != jenga.StreamFinished || !res.DeadlineMet {
			t.Fatalf("stream %d: %+v, want finished within deadline", st.ID(), res)
		}
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	rep := srv.Report()
	if rep.Finished != len(reqs) || rep.SLOAttainment <= 0 || rep.Goodput <= 0 {
		t.Errorf("report %+v, want %d finishes with positive goodput", rep, len(reqs))
	}
	// The online cluster path works through the facade too.
	c, err := jenga.NewCluster(jenga.ClusterConfig{
		Spec: spec, Replicas: 2, Policy: jenga.LeastLoaded,
		CapacityBytes: 256 << 20, Admission: jenga.KVAdmission{},
	})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := c.ServeOnline(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Finished+cres.Failed+cres.Shed != len(reqs) {
		t.Errorf("online cluster accounting: %+v over %d requests", cres, len(reqs))
	}
}

func TestPublicSpeculative(t *testing.T) {
	target := jenga.Models.Gemma2_9B()
	draft := jenga.Models.Gemma2_2B()
	ms, err := jenga.NewJengaShared(target, draft, 1<<30, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	d, err := jenga.NewSpeculative(jenga.SpecConfig{
		Target: target, Draft: draft,
		Device:   jenga.Device{Name: "t", MemBytes: 1 << 32, FLOPS: 50e12, MemBW: 500e9},
		Managers: ms, K: 4, AcceptRate: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := jenga.NewWorkloadGen(4)
	reqs := g.ShareGPT(4)
	for i := range reqs {
		if len(reqs[i].Prompt) > 300 {
			reqs[i].Prompt = reqs[i].Prompt[:300]
		}
		reqs[i].OutputLen = 12
	}
	jenga.AllAtOnce(reqs)
	res, err := d.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != 4 {
		t.Errorf("finished %d of 4", res.Finished)
	}
}

func TestPublicGeometry(t *testing.T) {
	spec := jenga.Models.Jamba52B()
	geo, err := spec.Geometry(jenga.LCMPage, 16)
	if err != nil {
		t.Fatal(err)
	}
	if geo.Ratio["attn"] != 588 {
		t.Errorf("attn ratio = %d, want 588", geo.Ratio["attn"])
	}
	if _, err := spec.Geometry(jenga.GCDPage, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Geometry(jenga.MaxPage, 16); err != nil {
		t.Fatal(err)
	}
}

func TestErrNoSpaceExported(t *testing.T) {
	spec := jenga.Models.Llama31_8B()
	mgr, err := jenga.NewManager(jenga.ManagerConfig{Spec: spec, CapacityBytes: 1 << 21})
	if err != nil {
		t.Fatal(err)
	}
	seq := &jenga.Sequence{ID: 1}
	for i := 0; i < 10_000; i++ {
		seq.Tokens = append(seq.Tokens, jenga.Token{ID: int32(i + 1)})
	}
	err = mgr.Reserve(seq, 10_000, 1)
	if !errors.Is(err, jenga.ErrNoSpace) {
		t.Errorf("expected ErrNoSpace, got %v", err)
	}
}

// TestPublicScheduler exercises the re-exported scheduling surface:
// parsing, the comparator, and an engine run under each built-in.
func TestPublicScheduler(t *testing.T) {
	for _, name := range []string{"fcfs", "priority", "sjf", "fairshare", "sjf:0.25"} {
		s, err := jenga.ParseScheduler(name)
		if err != nil {
			t.Fatalf("ParseScheduler(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("ParseScheduler(%q).Name() = %q", name, s.Name())
		}
	}
	if jenga.CompareSchedule(jenga.SchedReqInfo{Priority: 1}, jenga.SchedReqInfo{}) != -1 {
		t.Error("CompareSchedule must schedule the higher priority first")
	}
	spec := jenga.Models.CharacterAI8B()
	dev := jenga.Device{Name: "test", MemBytes: 1 << 32, FLOPS: 50e12, MemBW: 500e9}
	for _, scheduler := range []jenga.Scheduler{
		jenga.NewFCFS(), jenga.NewPriority(), jenga.NewSJF(),
		jenga.NewFairShare(map[int64]float64{1: 2}),
		jenga.WithPrefillReserve(jenga.NewFCFS(), 0.25),
	} {
		mgr, err := jenga.NewManager(jenga.ManagerConfig{
			Spec: spec, CapacityBytes: 1 << 28, RequestAware: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := jenga.NewEngine(jenga.EngineConfig{
			Spec: spec, Device: dev, Manager: mgr, MaxBatchTokens: 1024,
			Scheduler: scheduler,
		})
		if err != nil {
			t.Fatal(err)
		}
		g := jenga.NewWorkloadGen(3)
		reqs := g.PrefixGroups(3, 4, 256, 16)
		for i := range reqs {
			reqs[i].Priority = i % 2
		}
		jenga.AllAtOnce(reqs)
		res, err := eng.Run(reqs)
		if err != nil {
			t.Fatalf("%s: %v", scheduler.Name(), err)
		}
		if res.Finished != len(reqs) {
			t.Errorf("%s: finished %d of %d", scheduler.Name(), res.Finished, len(reqs))
		}
	}
}
