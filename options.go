package jenga

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"jenga/internal/cluster"
	"jenga/internal/sched"
)

// Option parsing: every flag-spelled policy knob — scheduler,
// admission, preemption, router — goes through one grammar and one
// error shape here, so command-line surfaces (jengabench, user
// drivers) get identical spellings and identical diagnostics instead
// of each internal package's ad-hoc parser. The per-package parsers
// (sched.ParseScheduler, engine.ParseAdmission, ...) remain for
// callers programming against the internals; these are the public
// front door.
//
// The shared grammar: a spec is a "+"-separated chain of items, each
// item a lowercase name with an optional ":<arg>" suffix — "fcfs",
// "fairshare:0.2", "kv+slo". Which names (and whether chains or args
// are meaningful) depends on the option kind.

// OptionError is the error every option parser returns: the kind of
// option, the rejected input, and the accepted spellings.
type OptionError struct {
	// Kind names the option ("scheduler", "admission", "preempt",
	// "router").
	Kind string
	// Input is the rejected spelling, verbatim.
	Input string
	// Want describes the accepted spellings.
	Want string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("jenga: bad %s option %q (want %s)", e.Kind, e.Input, e.Want)
}

// optionItem is one parsed element of the shared name[:arg] grammar.
type optionItem struct {
	Name, Arg string
	HasArg    bool
}

// splitOption parses the shared grammar: "+"-separated items, each
// name[:arg], names trimmed and lowercased (args kept verbatim).
func splitOption(spec string) []optionItem {
	parts := strings.Split(spec, "+")
	items := make([]optionItem, 0, len(parts))
	for _, part := range parts {
		name, arg, has := strings.Cut(strings.TrimSpace(part), ":")
		items = append(items, optionItem{Name: strings.ToLower(name), Arg: arg, HasArg: has})
	}
	return items
}

// Accepted spellings per option kind, shared between the parsers and
// their OptionError diagnostics.
const (
	schedulerOptions = "fcfs, priority, sjf or fairshare, optionally with a :<frac> prefill reserve in [0, 1)"
	admissionOptions = "none, kv, slo or a + chain like kv+slo"
	preemptOptions   = "recompute or swap"
	routerOptions    = "roundrobin, leastloaded or affinity"
)

// ParseSchedulerOption converts a scheduler spelling — "fcfs",
// "priority", "sjf", "fairshare", optionally with a ":<frac>" chunked-
// prefill budget reserve ("sjf:0.3"). Empty means FCFS, the default
// everywhere a Scheduler is accepted.
func ParseSchedulerOption(spec string) (Scheduler, error) {
	items := splitOption(spec)
	if len(items) != 1 {
		return nil, &OptionError{Kind: "scheduler", Input: spec, Want: schedulerOptions}
	}
	it := items[0]
	var out Scheduler
	switch it.Name {
	case "", "fcfs":
		out = sched.NewFCFS()
	case "priority":
		out = sched.NewPriority()
	case "sjf":
		out = sched.NewSJF()
	case "fairshare":
		out = sched.NewFairShare(nil)
	default:
		return nil, &OptionError{Kind: "scheduler", Input: spec, Want: schedulerOptions}
	}
	if it.HasArg {
		frac, err := strconv.ParseFloat(it.Arg, 64)
		if err != nil || frac < 0 || frac >= 1 {
			return nil, &OptionError{Kind: "scheduler", Input: spec, Want: schedulerOptions}
		}
		out = sched.WithPrefillReserve(out, frac)
	}
	return out, nil
}

// ParseAdmissionOption converts an admission spelling — "none", "kv",
// "slo", or a "+" chain like "kv+slo" that sheds when any member says
// shed. sloTTFT parameterizes the slo member's TTFT target. "none"
// (and empty) return a nil policy: admit everything.
func ParseAdmissionOption(spec string, sloTTFT time.Duration) (AdmissionPolicy, error) {
	items := splitOption(spec)
	if len(items) == 1 && (items[0].Name == "" || items[0].Name == "none") && !items[0].HasArg {
		return nil, nil
	}
	var members []AdmissionPolicy
	for _, it := range items {
		if it.HasArg {
			return nil, &OptionError{Kind: "admission", Input: spec, Want: admissionOptions}
		}
		switch it.Name {
		case "kv":
			members = append(members, KVAdmission{})
		case "slo":
			members = append(members, SLOAdmission{TTFT: sloTTFT})
		case "none", "":
			members = append(members, AdmitAll())
		default:
			return nil, &OptionError{Kind: "admission", Input: spec, Want: admissionOptions}
		}
	}
	if len(members) == 1 {
		return members[0], nil
	}
	return AdmissionChain(members...), nil
}

// ParsePreemptOption converts a preemption-mode spelling —
// "recompute" (empty means recompute, the default) or "swap" (requires
// a tiered manager, see ManagerConfig.HostTierBytes).
func ParsePreemptOption(spec string) (PreemptMode, error) {
	items := splitOption(spec)
	if len(items) != 1 || items[0].HasArg {
		return PreemptRecompute, &OptionError{Kind: "preempt", Input: spec, Want: preemptOptions}
	}
	switch items[0].Name {
	case "", "recompute":
		return PreemptRecompute, nil
	case "swap":
		return PreemptSwap, nil
	default:
		return PreemptRecompute, &OptionError{Kind: "preempt", Input: spec, Want: preemptOptions}
	}
}

// ParseRouterOption converts a cluster-router spelling — "roundrobin"
// ("rr"), "leastloaded" ("ll") or "affinity" ("prefix"). Empty means
// prefix affinity, the policy the paper's cluster results use.
func ParseRouterOption(spec string) (RouterPolicy, error) {
	items := splitOption(spec)
	if len(items) != 1 || items[0].HasArg {
		return 0, &OptionError{Kind: "router", Input: spec, Want: routerOptions}
	}
	switch items[0].Name {
	case "roundrobin", "rr":
		return cluster.RoundRobin, nil
	case "leastloaded", "ll":
		return cluster.LeastLoaded, nil
	case "", "affinity", "prefix", "prefix-affinity":
		return cluster.PrefixAffinity, nil
	default:
		return 0, &OptionError{Kind: "router", Input: spec, Want: routerOptions}
	}
}
