// Command jengabench runs the paper's experiments by ID and prints the
// corresponding tables and series, with -replicas a cluster serving
// comparison of the routing policies, or with -stream an online
// serving benchmark over the event-driven core: requests are routed at
// their arrival instants against live replica state, admission sheds
// by KV demand or SLO estimates, and the scorecard (goodput, SLO
// attainment, shed rate, latency percentiles) is printed and — with
// -bench-json — written as machine-readable JSON so the serving
// trajectory is tracked across PRs.
//
// With -bench-core it instead measures the allocator/engine hot-path
// micro-benchmarks (the internal/bench fixtures the root benchmark
// suite also runs) plus a compact end-to-end throughput anchor, and
// writes BENCH_core.json — preserving the file's existing baseline
// section so an optimization's before/after stays committed.
//
// With -scale-serve it runs the streamed scale benchmark: a
// serial-vs-stream baseline pair at a size ServeOnline can finish,
// then the full request count (default one million, streamed and never
// materialized) through ServeStream across a shard sweep, recording
// wall time and peak heap per point (the scale section of
// -bench-json). -cpuprofile/-memprofile capture pprof profiles of any
// mode.
//
// Usage:
//
//	jengabench -list
//	jengabench -exp fig13 -scale 0.5
//	jengabench -exp all
//	jengabench -replicas 4 -router all -model gemma2-2b -rate 200
//	jengabench -stream -rate 150 -slo-ttft 750ms -admission kv+slo \
//	    -bench-json BENCH_serving.json
//	jengabench -bench-core -bench-json BENCH_core.json
//	jengabench -scale-serve -requests 1000000 -stream-workload mixed \
//	    -bench-json BENCH_serving.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"jenga"
	"jenga/internal/bench"
	"jenga/internal/cluster"
	"jenga/internal/engine"
	"jenga/internal/experiments"
	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/sched"
	"jenga/internal/workload"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment ID to run (or 'all')")
		list  = flag.Bool("list", false, "list experiment IDs")
		scale = flag.Float64("scale", 1.0, "request-count scale factor")
		seed  = flag.Int64("seed", 42, "workload seed")
		csv   = flag.String("csv", "", "directory to also write tables as CSV")

		replicas  = flag.Int("replicas", 0, "run cluster mode with N engine replicas")
		router    = flag.String("router", "all", "routing policy: roundrobin, leastloaded, affinity or all")
		modelName = flag.String("model", "gemma2-2b", "model for cluster/stream mode (see Models zoo)")
		device    = flag.String("device", "h100", "device for cluster/stream mode: h100 or l4")
		requests  = flag.Int("requests", 480, "cluster/stream-mode request count")
		rate      = flag.Float64("rate", 0, "Poisson arrival rate in req/s (0 = all at once; stream mode defaults to 150)")
		groups    = flag.Int("prefix-groups", 0, "shared-prefix classes (default 4×replicas-1)")
		prefixLen = flag.Int("prefix-len", 1024, "shared-prefix length in tokens")

		benchCore   = flag.Bool("bench-core", false, "run the core hot-path micro-benchmarks and write BENCH_core.json (path via -bench-json)")
		fanout      = flag.Bool("fanout", false, "run the fan-out serving benchmark: copy-on-write forked branches vs naive independent branches (merges a fanout section into -bench-json)")
		fanBranch   = flag.Int("fanout-branch", 8, "fan-out branches per root")
		fanPrompt   = flag.Int("fanout-prompt", 256, "fan-out prompt length in tokens")
		fanAfter    = flag.Int("fanout-after", 770, "output tokens shared by all branches before the fork point")
		fanOutLen   = flag.Int("fanout-out", 834, "total output tokens per branch")
		fanRoots    = flag.Int("fanout-roots", 16, "fan-out roots in the traffic sub-experiment (rate via -rate, default 3 req/s)")
		stream      = flag.Bool("stream", false, "run the online streaming-serving benchmark (event-driven core, live routing, admission)")
		sloTTFT     = flag.Duration("slo-ttft", 750*time.Millisecond, "stream-mode TTFT target for SLO attainment and the slo admission policy")
		deadline    = flag.Duration("deadline", 0, "stream-mode per-request E2E deadline for goodput (0 = none)")
		admission   = flag.String("admission", "none", "stream-mode admission policy: none, kv, slo or a + chain like kv+slo")
		schedName   = flag.String("sched", "fcfs", "stream-mode scheduling policy: fcfs, priority, sjf, fairshare (optional :<frac> prefill reserve) or all")
		prioClasses = flag.Int("prio-classes", 2, "stream-mode priority classes: request i gets priority i mod N (1 = all equal)")
		preempt     = flag.String("preempt", "recompute", "stream-mode preemption: recompute, swap or all (swap rows run with the -host-gb tier, recompute rows untiered — the historical baseline)")
		hostGB      = flag.Float64("host-gb", 0, "per-replica host-memory KV tier budget in GiB for swap-mode rows (0 = no tier)")
		kvGB        = flag.Float64("kv-gb", 0, "per-replica KV budget override in GiB (0 = full device budget); small values make the stream memory-pressured")
		benchJSON   = flag.String("bench-json", "", "write the stream-mode scorecard to this JSON file (BENCH_serving.json)")

		scaleServe     = flag.Bool("scale-serve", false, "run the streamed scale benchmark: ServeOnline baseline, same-shape ServeStream, then a full-size shard sweep (merges a scale section into -bench-json)")
		shards         = flag.Int("shards", 0, "scale-mode shard count (0 = sweep 1,2,4,8)")
		streamWorkload = flag.String("stream-workload", "prefixgroups", "scale-mode streamed workload: prefixgroups, sharegpt or mixed")
		cpuProfile     = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile     = flag.String("memprofile", "", "write a heap profile at exit to this file")

		faults        = flag.Bool("faults", false, "run the chaos benchmark: a seeded replica crash/restart plus peer-transfer faults on the churn stream, recovery off vs on (merges a chaos section into -bench-json)")
		crashReplica  = flag.Int("crash-replica", -1, "chaos-mode replica to crash (-1 = the last)")
		crashAt       = flag.Duration("crash-at", 0, "chaos-mode crash instant (0 = 40% through the arrival burst)")
		restartAt     = flag.Duration("restart-at", 0, "chaos-mode restart instant (0 = 75% through the arrival burst)")
		fetchFailRate = flag.Float64("fetch-fail-rate", 0.2, "chaos-mode per-attempt peer-transfer failure probability")
		fleetStore    = flag.Bool("fleet-store", false, "run the fleet-store churn benchmark: cluster-wide KV store vs local recompute on a replica-churn stream (merges the fleet section's churn rows into -bench-json)")
		migrate       = flag.Bool("migrate", false, "run the live-migration drain benchmark: replica scale-down served by shedding vs recompute-migration vs transfer-migration (merges the fleet section's drain rows into -bench-json)")
		churnPhases   = flag.Int("churn-phases", 4, "fleet-mode popularity phases: group popularity shifts this many times across the stream")
		drainAfter    = flag.Duration("drain-after", 250*time.Millisecond, "migration-mode drain instant: the tail replica evacuates at the first arrival past it")
		drainReplicas = flag.Int("drain-replicas", 1, "migration-mode replicas to drain (capped at replicas-1)")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *scaleServe {
		if *exp != "" || *list || *csv != "" || *stream || *fanout || *benchCore || *faults || *fleetStore || *migrate {
			fmt.Fprintln(os.Stderr, "scale mode (-scale-serve) does not combine with -exp, -list, -csv, -stream, -fanout, -bench-core or the fleet/chaos modes")
			os.Exit(1)
		}
		n := *replicas
		if n <= 0 {
			n = 16
		}
		reqs := *requests
		if reqs <= 480 {
			reqs = 1_000_000 // the default -requests is sized for the serial modes
		}
		r := *rate
		if r <= 0 {
			r = 4000
		}
		if err := runScaleServe(reqs, n, *shards, r, *groups, *prefixLen, *streamWorkload, *seed, *benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *benchCore {
		if *exp != "" || *list || *csv != "" || *stream || *replicas > 0 {
			fmt.Fprintln(os.Stderr, "core-bench mode (-bench-core) does not combine with -exp, -list, -csv, -stream or -replicas")
			os.Exit(1)
		}
		out := *benchJSON
		if out == "" {
			out = "BENCH_core.json"
		}
		if err := runBenchCore(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *fanout {
		if *exp != "" || *list || *csv != "" || *stream || *replicas > 0 {
			fmt.Fprintln(os.Stderr, "fan-out mode (-fanout) does not combine with -exp, -list, -csv, -stream or -replicas")
			os.Exit(1)
		}
		r := *rate
		if r <= 0 {
			r = 3
		}
		if err := runFanout(*modelName, *device, *fanPrompt, *fanAfter, *fanOutLen, *fanBranch,
			*fanRoots, r, *kvGB, *seed, *benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *faults {
		if *exp != "" || *list || *csv != "" || *stream || *fanout || *benchCore || *fleetStore || *migrate {
			fmt.Fprintln(os.Stderr, "chaos mode (-faults) does not combine with -exp, -list, -csv, -stream, -fanout, -bench-core or the fleet modes")
			os.Exit(1)
		}
		n := *replicas
		if n <= 1 {
			n = 4
		}
		r := *rate
		if r <= 0 {
			r = 300
		}
		hg := *hostGB
		if hg <= 0 {
			hg = 2 // the recovery story needs the tiers the store serves from
		}
		routerName := *router
		if routerName == "all" {
			routerName = "roundrobin"
		}
		if err := runChaos(n, routerName, *modelName, *device,
			*requests, r, *groups, *prefixLen, *churnPhases, *seed,
			*sloTTFT, *deadline, *crashReplica, *crashAt, *restartAt, *fetchFailRate,
			hg, *kvGB, *benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *fleetStore || *migrate {
		if *exp != "" || *list || *csv != "" || *stream || *fanout || *benchCore {
			fmt.Fprintln(os.Stderr, "fleet mode (-fleet-store/-migrate) does not combine with -exp, -list, -csv, -stream, -fanout or -bench-core")
			os.Exit(1)
		}
		n := *replicas
		if n <= 1 {
			n = 4
		}
		r := *rate
		if r <= 0 {
			r = 300
		}
		hg := *hostGB
		if hg <= 0 {
			hg = 2 // the fleet store is the host tiers; an untiered fleet run is vacuous
		}
		routerName := *router
		if routerName == "all" {
			routerName = "roundrobin"
		}
		if err := runFleet(*fleetStore, *migrate, n, routerName, *modelName, *device,
			*requests, r, *groups, *prefixLen, *churnPhases, *seed,
			*sloTTFT, *deadline, *drainAfter, *drainReplicas, hg, *kvGB, *benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *stream {
		if *exp != "" || *list || *csv != "" {
			fmt.Fprintln(os.Stderr, "stream mode (-stream) does not combine with -exp, -list or -csv")
			os.Exit(1)
		}
		n := *replicas
		if n <= 0 {
			n = 1
		}
		r := *rate
		if r <= 0 {
			r = 150
		}
		routerName := *router
		if routerName == "all" {
			routerName = "affinity"
		}
		if err := runStream(n, routerName, *modelName, *device, *requests, r, *groups, *prefixLen, *seed,
			*sloTTFT, *deadline, *admission, *schedName, *prioClasses, *preempt, *hostGB, *kvGB, *benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *replicas > 0 {
		if *exp != "" || *list || *csv != "" {
			fmt.Fprintln(os.Stderr, "cluster mode (-replicas) does not combine with -exp, -list or -csv")
			os.Exit(1)
		}
		if err := runCluster(*replicas, *router, *modelName, *device, *requests, *rate, *groups, *prefixLen, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" {
			os.Exit(0)
		}
	}
	opt := experiments.Options{Scale: *scale, Seed: *seed, CSVDir: *csv}
	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "csv dir: %v\n", err)
			os.Exit(1)
		}
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		r, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s)\n", id, strings.Join(experiments.IDs(), ", "))
			os.Exit(1)
		}
		start := time.Now()
		if err := r(os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// parseDevice converts the -device flag spelling.
func parseDevice(device string) (gpu.Device, error) {
	switch strings.ToLower(device) {
	case "h100":
		return gpu.H100(), nil
	case "l4":
		return gpu.L4(), nil
	default:
		return gpu.Device{}, fmt.Errorf("unknown device %q (want h100 or l4)", device)
	}
}

// runCluster compares routing policies on a shared-prefix workload.
func runCluster(replicas int, router, modelName, device string, requests int, rate float64, groups, prefixLen int, seed int64) error {
	spec, err := model.ByName(modelName)
	if err != nil {
		return err
	}
	dev, err := parseDevice(device)
	if err != nil {
		return err
	}
	var policies []cluster.RouterPolicy
	if router == "all" {
		policies = []cluster.RouterPolicy{cluster.RoundRobin, cluster.LeastLoaded, cluster.PrefixAffinity}
	} else {
		p, err := jenga.ParseRouterOption(router)
		if err != nil {
			return err
		}
		policies = []cluster.RouterPolicy{p}
	}
	if groups <= 0 {
		// More prefix classes than replicas, deliberately co-prime-ish
		// so round-robin cannot accidentally align classes to replicas.
		groups = 4*replicas - 1
	}
	perGroup := requests / groups
	if perGroup < 1 {
		perGroup = 1
	}

	fmt.Printf("cluster: %d × %s on %s, %d requests over %d shared prefixes of %d tokens\n",
		replicas, spec.Name, dev.Name, groups*perGroup, groups, prefixLen)
	fmt.Printf("%-12s %9s %10s %10s %10s %8s %10s %8s\n",
		"router", "req/s", "p50 TTFT", "p99 TTFT", "p99 E2E", "hit", "imbalance", "kv-util")
	for _, p := range policies {
		gen := workload.NewGen(seed)
		reqs := gen.PrefixGroups(groups, perGroup, prefixLen, 128)
		if rate > 0 {
			gen.PoissonArrivals(reqs, rate)
		} else {
			workload.AllAtOnce(reqs)
		}
		c, err := cluster.New(cluster.Config{
			Spec: spec, Device: dev, Replicas: replicas, Policy: p,
		})
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := c.Serve(reqs)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %9.1f %10s %10s %10s %7.1f%% %10.2f %7.1f%%\n",
			res.Policy, res.ReqPerSec,
			res.P50TTFT.Round(time.Millisecond), res.P99TTFT.Round(time.Millisecond),
			res.P99E2E.Round(time.Millisecond),
			100*res.HitRate, res.Imbalance, 100*res.MeanKVUtil)
		if res.Failed > 0 {
			fmt.Printf("  (%d requests failed)\n", res.Failed)
		}
		for _, pr := range res.PerReplica {
			fmt.Printf("  replica %d: %4d reqs, %8d tokens, hit %5.1f%%, peak kv %5.1f%%\n",
				pr.Replica, pr.Requests, pr.RoutedTokens,
				100*pr.Result.HitRate, 100*pr.Result.PeakKVUtil)
		}
		fmt.Printf("  [%v wall]\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// servingBench is the machine-readable BENCH_serving.json schema: the
// serving scorecard tracked across PRs, one row per scheduling policy
// on the identical seeded workload.
type servingBench struct {
	Model       string  `json:"model"`
	Device      string  `json:"device"`
	Replicas    int     `json:"replicas"`
	Router      string  `json:"router"`
	Admission   string  `json:"admission"`
	Requests    int     `json:"requests"`
	RatePerS    float64 `json:"rate_per_s"`
	SLOTTFTMs   float64 `json:"slo_ttft_ms"`
	PrioClasses int     `json:"prio_classes"`
	// HostGB is the per-replica host-tier budget swap-mode rows run
	// with (recompute rows are always untiered); KvGB the per-replica
	// KV budget override (0 = full device budget) that makes the
	// stream memory-pressured.
	HostGB float64 `json:"host_gb"`
	KvGB   float64 `json:"kv_gb"`

	Policies []servingPolicyBench `json:"policies"`

	// Fanout is the fan-out sharing scorecard (-fanout mode); Fleet the
	// fleet-memory scorecard (-fleet-store/-migrate modes); Chaos the
	// fault-injection scorecard (-faults mode); Scale the streamed
	// million-request harness scorecard (-scale-serve mode). Every mode
	// rewrites its own section of the file and preserves the others'.
	Fanout *fanoutBench `json:"fanout,omitempty"`
	Fleet  *fleetBench  `json:"fleet,omitempty"`
	Chaos  *chaosBench  `json:"chaos,omitempty"`
	Scale  *scaleBench  `json:"scale,omitempty"`
}

// chaosBench is the chaos section of BENCH_serving.json: the identical
// seeded fault schedule — one replica crash and restart mid-burst plus
// a peer-transfer failure rate — served with the recovery machinery
// off and on, so the goodput, lost-request and tail-latency cost of a
// crash (and what recovery buys back) is tracked across PRs.
type chaosBench struct {
	Model     string  `json:"model"`
	Device    string  `json:"device"`
	Replicas  int     `json:"replicas"`
	Requests  int     `json:"requests"`
	RatePerS  float64 `json:"rate_per_s"`
	Groups    int     `json:"groups"`
	PrefixLen int     `json:"prefix_len"`
	Phases    int     `json:"phases"`
	HostGB    float64 `json:"host_gb"`
	KvGB      float64 `json:"kv_gb"`

	CrashReplica  int     `json:"crash_replica"`
	CrashAtMs     float64 `json:"crash_at_ms"`
	RestartAtMs   float64 `json:"restart_at_ms"`
	FetchFailRate float64 `json:"fetch_fail_rate"`
	PlanSeed      int64   `json:"plan_seed"`

	Rows []chaosRow `json:"rows"`
}

// chaosRow is one recovery variant's scorecard row.
type chaosRow struct {
	Mode               string  `json:"mode"`
	ReqPerSec          float64 `json:"req_per_s"`
	Goodput            float64 `json:"goodput_per_s"`
	SLOAttainment      float64 `json:"slo_attainment"`
	P50TTFTMs          float64 `json:"p50_ttft_ms"`
	P99TTFTMs          float64 `json:"p99_ttft_ms"`
	Finished           int     `json:"finished"`
	Failed             int     `json:"failed"`
	Shed               int     `json:"shed"`
	LostRequests       int     `json:"lost_requests"`
	Crashes            int     `json:"crashes"`
	Restarts           int     `json:"restarts"`
	Redispatched       int     `json:"redispatched"`
	DirInvalidations   int     `json:"dir_invalidations"`
	MigrationRollbacks int     `json:"migration_rollbacks"`
	FetchRetries       int64   `json:"fetch_retries"`
	FetchFailures      int64   `json:"fetch_failures"`
	HitRate            float64 `json:"hit_rate"`
	PeerBytes          int64   `json:"peer_bytes"`
}

// fleetBench is the fleet section of BENCH_serving.json: the
// cluster-wide KV store and live-migration scorecard. Churn rows
// compare the fleet store against local recompute on a replica-churn
// stream; drain rows compare scale-down served by shedding, by
// recompute-migration and by transfer-migration at the same offered
// load. -fleet-store and -migrate each rewrite their own rows and
// preserve the other's.
type fleetBench struct {
	Model     string  `json:"model"`
	Device    string  `json:"device"`
	Replicas  int     `json:"replicas"`
	Requests  int     `json:"requests"`
	RatePerS  float64 `json:"rate_per_s"`
	Groups    int     `json:"groups"`
	PrefixLen int     `json:"prefix_len"`
	Phases    int     `json:"phases"`
	HostGB    float64 `json:"host_gb"`
	KvGB      float64 `json:"kv_gb"`

	DrainAfterMs  float64 `json:"drain_after_ms,omitempty"`
	DrainReplicas int     `json:"drain_replicas,omitempty"`

	Churn []fleetRow `json:"churn,omitempty"`
	Drain []fleetRow `json:"drain,omitempty"`
}

// fleetRow is one fleet-policy variant's scorecard row.
type fleetRow struct {
	Mode                 string  `json:"mode"`
	ReqPerSec            float64 `json:"req_per_s"`
	Goodput              float64 `json:"goodput_per_s"`
	SLOAttainment        float64 `json:"slo_attainment"`
	P50TTFTMs            float64 `json:"p50_ttft_ms"`
	P99TTFTMs            float64 `json:"p99_ttft_ms"`
	HitRate              float64 `json:"hit_rate"`
	PeerHits             int     `json:"peer_hits"`
	PeerHitRate          float64 `json:"peer_hit_rate"`
	PeerBytes            int64   `json:"peer_bytes"`
	ComputedPromptTokens int64   `json:"computed_prompt_tokens"`
	RecomputedTokens     int64   `json:"recomputed_tokens"`
	Migrations           int     `json:"migrations"`
	Finished             int     `json:"finished"`
	Failed               int     `json:"failed"`
	Shed                 int     `json:"shed"`
}

// fanoutBench is the -fanout section of BENCH_serving.json: the same
// fan-out shape served twice — forked copy-on-write branches vs naive
// independent branches — so the per-branch KV footprint and the branch
// TTFT advantage are tracked across PRs.
type fanoutBench struct {
	Model     string  `json:"model"`
	Device    string  `json:"device"`
	PromptLen int     `json:"prompt_len"`
	ForkAfter int     `json:"fork_after"`
	OutputLen int     `json:"output_len"`
	Branch    int     `json:"branch"`
	Roots     int     `json:"roots"`
	RatePerS  float64 `json:"rate_per_s"`
	KvGB      float64 `json:"kv_gb"`

	Modes []fanoutModeBench `json:"modes"`
	// SavingsX is naive kv_bytes_per_branch over fork's: how many
	// times less KV a forked branch holds at the memory peak.
	SavingsX float64 `json:"kv_bytes_per_branch_savings_x"`
}

// fanoutModeBench is one mode's row: memory columns from the
// single-root sub-experiment (peak KV with every branch live), traffic
// columns from the Poisson-roots sub-experiment.
type fanoutModeBench struct {
	Mode             string  `json:"mode"`
	PeakKVBytes      int64   `json:"peak_kv_bytes"`
	KVBytesPerBranch float64 `json:"kv_bytes_per_branch"`
	Forks            int64   `json:"forks"`
	CowCopies        int64   `json:"cow_copies"`
	CowCopyBytes     int64   `json:"cow_copy_bytes"`
	ReqPerSec        float64 `json:"req_per_s"`
	P50TTFTMs        float64 `json:"p50_ttft_ms"`
	P99TTFTMs        float64 `json:"p99_ttft_ms"`
	Finished         int     `json:"finished"`
	Failed           int     `json:"failed"`
}

// loadServingBench reads an existing scorecard file so one mode's write
// can preserve the other mode's section (missing or unreadable file →
// zero value).
func loadServingBench(path string) servingBench {
	var sb servingBench
	if buf, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(buf, &sb)
	}
	return sb
}

// servingPolicyBench is one (scheduling policy, preempt mode) row of
// the scorecard.
type servingPolicyBench struct {
	Scheduler          string  `json:"scheduler"`
	Preempt            string  `json:"preempt"`
	ReqPerSec          float64 `json:"req_per_s"`
	Goodput            float64 `json:"goodput_per_s"`
	SLOAttainment      float64 `json:"slo_attainment"`
	ShedRate           float64 `json:"shed_rate"`
	P50TTFTMs          float64 `json:"p50_ttft_ms"`
	P99TTFTMs          float64 `json:"p99_ttft_ms"`
	P50E2EMs           float64 `json:"p50_e2e_ms"`
	P99E2EMs           float64 `json:"p99_e2e_ms"`
	HitRate            float64 `json:"hit_rate"`
	MeanKVUtil         float64 `json:"mean_kv_util"`
	Imbalance          float64 `json:"imbalance"`
	GroupJain          float64 `json:"group_jain"`
	MaxGroupMeanTTFTMs float64 `json:"max_group_mean_ttft_ms"`
	Finished           int     `json:"finished"`
	Failed             int     `json:"failed"`
	Shed               int     `json:"shed"`
	// Host-tier columns: restored-vs-recomputed volume, transfer
	// counts and the p99 per-request restore cost.
	TierHitRate      float64 `json:"tier_hit_rate"`
	RestoredTokens   int64   `json:"restored_tokens"`
	RecomputedTokens int64   `json:"recomputed_tokens"`
	SwapOuts         int64   `json:"swap_outs"`
	SwapIns          int64   `json:"swap_ins"`
	RestoreP99Ms     float64 `json:"restore_p99_ms"`
}

// runStream runs the online streaming-serving benchmark: a
// shared-prefix Poisson stream through ServeOnline — routing sees live
// replica state, admission sheds at arrival — once per scheduling
// policy on the identical seeded workload, so the scorecard compares
// policies directly.
func runStream(replicas int, router, modelName, device string, requests int, rate float64,
	groups, prefixLen int, seed int64, sloTTFT, deadline time.Duration,
	admission, schedName string, prioClasses int, preempt string, hostGB, kvGB float64,
	benchJSON string) error {
	spec, err := model.ByName(modelName)
	if err != nil {
		return err
	}
	dev, err := parseDevice(device)
	if err != nil {
		return err
	}
	policy, err := jenga.ParseRouterOption(router)
	if err != nil {
		return err
	}
	adm, err := jenga.ParseAdmissionOption(admission, sloTTFT)
	if err != nil {
		return err
	}
	schedNames := []string{schedName}
	if schedName == "all" {
		schedNames = []string{"fcfs", "priority", "sjf", "fairshare"}
	}
	schedulers := make([]sched.Scheduler, len(schedNames))
	for i, name := range schedNames {
		s, err := jenga.ParseSchedulerOption(name)
		if err != nil {
			return err
		}
		schedulers[i] = s
	}
	preemptModes := []engine.PreemptMode{engine.PreemptRecompute}
	switch preempt {
	case "all":
		preemptModes = []engine.PreemptMode{engine.PreemptRecompute, engine.PreemptSwap}
	default:
		m, err := jenga.ParsePreemptOption(preempt)
		if err != nil {
			return err
		}
		preemptModes = []engine.PreemptMode{m}
	}
	hostBytes := int64(hostGB * float64(1<<30))
	if groups <= 0 {
		groups = 4*replicas - 1
	}
	admName := "none"
	if adm != nil {
		admName = adm.Name()
	}
	opt := bench.ServingOptions{
		Spec: spec, Device: dev, Replicas: replicas, Router: policy,
		Admission: adm, Requests: requests, Rate: rate,
		Groups: groups, PrefixLen: prefixLen, SuffixLen: 128,
		PrioClasses: prioClasses, SLOTTFT: sloTTFT, Deadline: deadline, Seed: seed,
		CapacityBytes: int64(kvGB * float64(1<<30)),
	}
	nReqs := opt.RequestCount()
	fmt.Printf("stream: %d × %s on %s, %d requests at %.0f req/s, router %s, admission %s, slo-ttft %v, %d priority classes, host tier %.1f GiB (swap rows)\n",
		replicas, spec.Name, dev.Name, nReqs, rate, policy, admName, sloTTFT, prioClasses, hostGB)
	fmt.Printf("%-12s %-9s %8s %9s %9s %7s %10s %10s %10s %7s %7s %8s\n",
		"scheduler", "preempt", "req/s", "goodput", "slo-att", "shed", "p50 TTFT", "p99 TTFT", "p99 E2E", "hit", "tier", "recomp")
	out := servingBench{
		Model: spec.Name, Device: dev.Name, Replicas: replicas,
		Router: policy.String(), Admission: admName,
		Requests: nReqs, RatePerS: rate,
		SLOTTFTMs:   float64(sloTTFT) / float64(time.Millisecond),
		PrioClasses: prioClasses,
		HostGB:      hostGB,
		KvGB:        kvGB,
	}
	for _, scheduler := range schedulers {
		for _, mode := range preemptModes {
			opt.Scheduler = scheduler
			opt.PreemptMode = mode
			// Recompute rows run untiered — the historical baseline the
			// scorecard trajectory compares against; swap rows get the
			// host tier.
			if mode == engine.PreemptSwap {
				opt.HostTierBytes = hostBytes
			} else {
				opt.HostTierBytes = 0
			}
			start := time.Now()
			res, err := bench.RunServing(opt)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %-9s %8.1f %9.1f %8.1f%% %6.1f%% %10s %10s %10s %6.1f%% %6.1f%% %8d  [%v wall]\n",
				scheduler.Name(), mode, res.ReqPerSec, res.Goodput, 100*res.SLOAttainment,
				100*float64(res.Shed)/float64(nReqs),
				res.P50TTFT.Round(time.Millisecond), res.P99TTFT.Round(time.Millisecond),
				res.P99E2E.Round(time.Millisecond), 100*res.HitRate, 100*res.TierHitRate,
				res.RecomputedTokens, time.Since(start).Round(time.Millisecond))
			if res.Failed > 0 {
				fmt.Printf("  (%d requests failed)\n", res.Failed)
			}
			out.Policies = append(out.Policies, servingPolicyBench{
				Scheduler:          scheduler.Name(),
				Preempt:            mode.String(),
				ReqPerSec:          res.ReqPerSec,
				Goodput:            res.Goodput,
				SLOAttainment:      res.SLOAttainment,
				ShedRate:           float64(res.Shed) / float64(nReqs),
				P50TTFTMs:          float64(res.P50TTFT) / float64(time.Millisecond),
				P99TTFTMs:          float64(res.P99TTFT) / float64(time.Millisecond),
				P50E2EMs:           float64(res.P50E2E) / float64(time.Millisecond),
				P99E2EMs:           float64(res.P99E2E) / float64(time.Millisecond),
				HitRate:            res.HitRate,
				MeanKVUtil:         res.MeanKVUtil,
				Imbalance:          res.Imbalance,
				GroupJain:          res.GroupJain,
				MaxGroupMeanTTFTMs: float64(res.MaxGroupMeanTTFT) / float64(time.Millisecond),
				Finished:           res.Finished, Failed: res.Failed, Shed: res.Shed,
				TierHitRate:      res.TierHitRate,
				RestoredTokens:   res.RestoredTokens,
				RecomputedTokens: res.RecomputedTokens,
				SwapOuts:         res.SwapOuts,
				SwapIns:          res.SwapIns,
				RestoreP99Ms:     float64(res.P99Restore) / float64(time.Millisecond),
			})
		}
	}
	if benchJSON == "" {
		return nil
	}
	prev := loadServingBench(benchJSON)
	out.Fanout = prev.Fanout
	out.Fleet = prev.Fleet
	out.Chaos = prev.Chaos
	out.Scale = prev.Scale
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(benchJSON, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", benchJSON)
	return nil
}

// runFanout runs the fan-out sharing benchmark: the identical fan-out
// shape served with copy-on-write forking and with naive independent
// branches. Two sub-experiments per mode — memory (one root, every
// branch live at once, peak KV per branch) and traffic (Poisson roots,
// branch throughput and TTFT percentiles) — merge into one row.
func runFanout(modelName, device string, prompt, after, outLen, branch, roots int,
	rate, kvGB float64, seed int64, benchJSON string) error {
	spec, err := model.ByName(modelName)
	if err != nil {
		return err
	}
	dev, err := parseDevice(device)
	if err != nil {
		return err
	}
	base := bench.FanoutOptions{
		Spec: spec, Device: dev, CapacityBytes: int64(kvGB * float64(1<<30)),
		PromptLen: prompt, ForkAfter: after, OutputLen: outLen, Branch: branch,
		Seed: seed,
	}
	fb := fanoutBench{
		Model: spec.Name, Device: dev.Name,
		PromptLen: prompt, ForkAfter: after, OutputLen: outLen, Branch: branch,
		Roots: roots, RatePerS: rate, KvGB: kvGB,
	}
	fmt.Printf("fanout: %s on %s, branch %d after %d shared output tokens (prompt %d, %d per branch); traffic: %d roots at %.1f req/s\n",
		spec.Name, dev.Name, branch, after, prompt, outLen, roots, rate)
	fmt.Printf("%-6s %14s %14s %8s %10s %8s %10s %10s %9s\n",
		"mode", "peak KV", "KV/branch", "forks", "cow bytes", "req/s", "p50 TTFT", "p99 TTFT", "finished")
	for _, naive := range []bool{false, true} {
		mem := base
		mem.Roots, mem.Rate, mem.Naive = 1, 0, naive
		mres, err := bench.RunFanout(mem)
		if err != nil {
			return err
		}
		traffic := base
		traffic.Roots, traffic.Rate, traffic.Naive = roots, rate, naive
		tres, err := bench.RunFanout(traffic)
		if err != nil {
			return err
		}
		mode := "fork"
		if naive {
			mode = "naive"
		}
		row := fanoutModeBench{
			Mode:             mode,
			PeakKVBytes:      mres.PeakKVBytes,
			KVBytesPerBranch: mres.KVBytesPerBranch,
			Forks:            mres.Forks,
			CowCopies:        mres.CowCopies,
			CowCopyBytes:     mres.CowCopyBytes,
			ReqPerSec:        tres.ReqPerSec,
			P50TTFTMs:        float64(tres.P50TTFT) / float64(time.Millisecond),
			P99TTFTMs:        float64(tres.P99TTFT) / float64(time.Millisecond),
			Finished:         tres.Finished,
			Failed:           mres.Failed + tres.Failed,
		}
		fb.Modes = append(fb.Modes, row)
		fmt.Printf("%-6s %14d %14.0f %8d %10d %8.1f %10s %10s %9d\n",
			mode, row.PeakKVBytes, row.KVBytesPerBranch, row.Forks, row.CowCopyBytes,
			row.ReqPerSec, tres.P50TTFT.Round(time.Millisecond), tres.P99TTFT.Round(time.Millisecond),
			row.Finished)
		if row.Failed > 0 {
			fmt.Printf("  (%d requests failed)\n", row.Failed)
		}
	}
	if fb.Modes[0].KVBytesPerBranch > 0 {
		fb.SavingsX = fb.Modes[1].KVBytesPerBranch / fb.Modes[0].KVBytesPerBranch
	}
	fmt.Printf("KV bytes per branch: fork holds %.2fx less than naive at the memory peak\n", fb.SavingsX)
	if benchJSON == "" {
		return nil
	}
	sb := loadServingBench(benchJSON)
	sb.Fanout = &fb
	buf, err := json.MarshalIndent(sb, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(benchJSON, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (fanout section)\n", benchJSON)
	return nil
}

// fleetRowOf flattens one cluster result into a scorecard row.
func fleetRowOf(mode string, res *cluster.Result) fleetRow {
	return fleetRow{
		Mode:                 mode,
		ReqPerSec:            res.ReqPerSec,
		Goodput:              res.Goodput,
		SLOAttainment:        res.SLOAttainment,
		P50TTFTMs:            float64(res.P50TTFT) / float64(time.Millisecond),
		P99TTFTMs:            float64(res.P99TTFT) / float64(time.Millisecond),
		HitRate:              res.HitRate,
		PeerHits:             res.PeerHits,
		PeerHitRate:          res.PeerHitRate,
		PeerBytes:            res.PeerBytes,
		ComputedPromptTokens: res.ComputedPromptTokens,
		RecomputedTokens:     res.RecomputedTokens,
		Migrations:           res.Migrations,
		Finished:             res.Finished,
		Failed:               res.Failed,
		Shed:                 res.Shed,
	}
}

// runFleet runs the fleet-memory benchmarks on a replica-churn stream:
// with storeExp, the fleet store against local recompute (identical
// workload and routing, only the directory and peer-transfer path
// differ); with migrateExp, a mid-stream scale-down served by
// shedding, by recompute-migration and by transfer-migration. Each
// variant gets a fresh cluster — cold caches, empty directory — so the
// rows compare policies, not warm-up.
func runFleet(storeExp, migrateExp bool, replicas int, router, modelName, device string,
	requests int, rate float64, groups, prefixLen, phases int, seed int64,
	sloTTFT, deadline, drainAfter time.Duration, drainReplicas int,
	hostGB, kvGB float64, benchJSON string) error {
	spec, err := model.ByName(modelName)
	if err != nil {
		return err
	}
	dev, err := parseDevice(device)
	if err != nil {
		return err
	}
	policy, err := jenga.ParseRouterOption(router)
	if err != nil {
		return err
	}
	if groups <= 0 {
		groups = 4*replicas - 1
	}
	opt := bench.FleetOptions{
		Spec: spec, Device: dev, Replicas: replicas,
		CapacityBytes: int64(kvGB * float64(1<<30)),
		HostTierBytes: int64(hostGB * float64(1<<30)),
		Router:        policy,
		Requests:      requests, Rate: rate,
		Groups: groups, PrefixLen: prefixLen, SuffixLen: 128, Phases: phases,
		SLOTTFT: sloTTFT, Deadline: deadline, Seed: seed,
	}
	nReqs := opt.RequestCount()
	fb := fleetBench{
		Model: spec.Name, Device: dev.Name, Replicas: replicas,
		Requests: nReqs, RatePerS: rate,
		Groups: groups, PrefixLen: prefixLen, Phases: phases,
		HostGB: hostGB, KvGB: kvGB,
	}
	fmt.Printf("fleet: %d × %s on %s, %d requests at %.0f req/s over %d churning prefixes of %d tokens (%d phases), router %s, host tier %.1f GiB\n",
		replicas, spec.Name, dev.Name, nReqs, rate, groups, prefixLen, phases, policy, hostGB)
	header := func() {
		fmt.Printf("%-18s %8s %9s %10s %10s %7s %7s %10s %9s %7s %6s %6s\n",
			"mode", "req/s", "goodput", "p50 TTFT", "p99 TTFT", "hit", "peer", "computed", "recomp", "migr", "shed", "fail")
	}
	row := func(mode string, fl cluster.FleetPolicy) (fleetRow, error) {
		opt.Fleet = fl
		start := time.Now()
		res, err := bench.RunFleet(opt)
		if err != nil {
			return fleetRow{}, err
		}
		r := fleetRowOf(mode, res)
		fmt.Printf("%-18s %8.1f %9.1f %10s %10s %6.1f%% %6.1f%% %10d %9d %7d %6d %6d  [%v wall]\n",
			mode, r.ReqPerSec, r.Goodput,
			res.P50TTFT.Round(time.Millisecond), res.P99TTFT.Round(time.Millisecond),
			100*r.HitRate, 100*r.PeerHitRate, r.ComputedPromptTokens, r.RecomputedTokens,
			r.Migrations, r.Shed, r.Failed, time.Since(start).Round(time.Millisecond))
		return r, nil
	}
	if storeExp {
		fmt.Println("churn: fleet store vs local recompute")
		header()
		for _, v := range []struct {
			mode string
			fl   cluster.FleetPolicy
		}{
			{"local-recompute", cluster.FleetPolicy{}},
			{"fleet-store", cluster.FleetPolicy{Store: true}},
		} {
			r, err := row(v.mode, v.fl)
			if err != nil {
				return err
			}
			fb.Churn = append(fb.Churn, r)
		}
	}
	if migrateExp {
		fb.DrainAfterMs = float64(drainAfter) / float64(time.Millisecond)
		fb.DrainReplicas = drainReplicas
		fmt.Printf("drain: %d replica(s) evacuate at %v\n", drainReplicas, drainAfter)
		header()
		for _, v := range []struct {
			mode string
			fl   cluster.FleetPolicy
		}{
			{"shed", cluster.FleetPolicy{DrainAfter: drainAfter, DrainReplicas: drainReplicas}},
			{"migrate-recompute", cluster.FleetPolicy{Migrate: true, DrainAfter: drainAfter, DrainReplicas: drainReplicas}},
			{"migrate-transfer", cluster.FleetPolicy{Store: true, Migrate: true, DrainAfter: drainAfter, DrainReplicas: drainReplicas}},
		} {
			r, err := row(v.mode, v.fl)
			if err != nil {
				return err
			}
			fb.Drain = append(fb.Drain, r)
		}
	}
	if benchJSON == "" {
		return nil
	}
	sb := loadServingBench(benchJSON)
	if prev := sb.Fleet; prev != nil {
		// Preserve the rows of whichever experiment did not re-run.
		if !storeExp {
			fb.Churn = prev.Churn
		}
		if !migrateExp {
			fb.Drain, fb.DrainAfterMs, fb.DrainReplicas = prev.Drain, prev.DrainAfterMs, prev.DrainReplicas
		}
	}
	sb.Fleet = &fb
	buf, err := json.MarshalIndent(sb, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(benchJSON, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (fleet section)\n", benchJSON)
	return nil
}

// runChaos runs the fault-injection benchmark: the churn workload with
// a seeded replica crash/restart mid-burst and a peer-transfer failure
// rate, served twice — recovery machinery off, then on — on the
// identical plan. The printed scorecard and the chaos section of
// -bench-json record what recovery buys: requests saved (lost → 0),
// goodput recovered, and the tail-latency price of re-dispatching the
// crashed replica's work.
func runChaos(replicas int, router, modelName, device string,
	requests int, rate float64, groups, prefixLen, phases int, seed int64,
	sloTTFT, deadline time.Duration, crashReplica int, crashAt, restartAt time.Duration,
	fetchFailRate, hostGB, kvGB float64, benchJSON string) error {
	spec, err := model.ByName(modelName)
	if err != nil {
		return err
	}
	dev, err := parseDevice(device)
	if err != nil {
		return err
	}
	policy, err := jenga.ParseRouterOption(router)
	if err != nil {
		return err
	}
	if groups <= 0 {
		groups = 4*replicas - 1
	}
	opt := bench.ChaosOptions{
		FleetOptions: bench.FleetOptions{
			Spec: spec, Device: dev, Replicas: replicas,
			CapacityBytes: int64(kvGB * float64(1<<30)),
			HostTierBytes: int64(hostGB * float64(1<<30)),
			Router:        policy,
			Requests:      requests, Rate: rate,
			Groups: groups, PrefixLen: prefixLen, SuffixLen: 128, Phases: phases,
			SLOTTFT: sloTTFT, Deadline: deadline, Seed: seed,
		},
		CrashReplica:  crashReplica,
		CrashAt:       crashAt,
		RestartAt:     restartAt,
		FetchFailRate: fetchFailRate,
	}
	plan := opt.Plan()
	ev := plan.Events
	cb := chaosBench{
		Model: spec.Name, Device: dev.Name, Replicas: replicas,
		Requests: opt.RequestCount(), RatePerS: rate,
		Groups: groups, PrefixLen: prefixLen, Phases: phases,
		HostGB: hostGB, KvGB: kvGB,
		CrashReplica:  ev[0].Replica,
		CrashAtMs:     float64(ev[0].At) / float64(time.Millisecond),
		RestartAtMs:   float64(ev[1].At) / float64(time.Millisecond),
		FetchFailRate: fetchFailRate,
		PlanSeed:      seed,
	}
	fmt.Printf("chaos: %d × %s on %s, %d requests at %.0f req/s; crash replica %d at %v, restart %v, transfer fail rate %.2f (plan %x)\n",
		replicas, spec.Name, dev.Name, cb.Requests, rate,
		ev[0].Replica, ev[0].At.Round(time.Millisecond), ev[1].At.Round(time.Millisecond),
		fetchFailRate, plan.Fingerprint())
	fmt.Printf("%-12s %8s %9s %9s %10s %10s %6s %6s %6s %7s %7s %7s\n",
		"recovery", "req/s", "goodput", "slo-att", "p50 TTFT", "p99 TTFT", "lost", "shed", "fail", "redisp", "retry", "xfail")
	for _, recover := range []bool{false, true} {
		opt.Recover = recover
		start := time.Now()
		res, err := bench.RunChaos(opt)
		if err != nil {
			return err
		}
		mode := "off"
		if recover {
			mode = "on"
		}
		fmt.Printf("%-12s %8.1f %9.1f %8.1f%% %10s %10s %6d %6d %6d %7d %7d %7d  [%v wall]\n",
			mode, res.ReqPerSec, res.Goodput, 100*res.SLOAttainment,
			res.P50TTFT.Round(time.Millisecond), res.P99TTFT.Round(time.Millisecond),
			res.LostRequests, res.Shed, res.Failed,
			res.Redispatched, res.FetchRetries, res.FetchFailures,
			time.Since(start).Round(time.Millisecond))
		cb.Rows = append(cb.Rows, chaosRow{
			Mode:               mode,
			ReqPerSec:          res.ReqPerSec,
			Goodput:            res.Goodput,
			SLOAttainment:      res.SLOAttainment,
			P50TTFTMs:          float64(res.P50TTFT) / float64(time.Millisecond),
			P99TTFTMs:          float64(res.P99TTFT) / float64(time.Millisecond),
			Finished:           res.Finished,
			Failed:             res.Failed,
			Shed:               res.Shed,
			LostRequests:       res.LostRequests,
			Crashes:            res.Crashes,
			Restarts:           res.Restarts,
			Redispatched:       res.Redispatched,
			DirInvalidations:   res.DirInvalidations,
			MigrationRollbacks: res.MigrationRollbacks,
			FetchRetries:       res.FetchRetries,
			FetchFailures:      res.FetchFailures,
			HitRate:            res.HitRate,
			PeerBytes:          res.PeerBytes,
		})
	}
	off, on := cb.Rows[0], cb.Rows[1]
	fmt.Printf("recovery saved %d requests (lost %d → %d) and %+.1f goodput req/s\n",
		off.LostRequests-on.LostRequests, off.LostRequests, on.LostRequests,
		on.Goodput-off.Goodput)
	if benchJSON == "" {
		return nil
	}
	sb := loadServingBench(benchJSON)
	sb.Chaos = &cb
	buf, err := json.MarshalIndent(sb, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(benchJSON, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (chaos section)\n", benchJSON)
	return nil
}
