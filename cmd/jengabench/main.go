// Command jengabench runs the paper's experiments by ID and prints the
// corresponding tables and series, or — with -replicas — a cluster
// serving comparison of the routing policies.
//
// Usage:
//
//	jengabench -list
//	jengabench -exp fig13 -scale 0.5
//	jengabench -exp all
//	jengabench -replicas 4 -router all -model gemma2-2b -rate 200
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"jenga/internal/cluster"
	"jenga/internal/experiments"
	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/workload"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment ID to run (or 'all')")
		list  = flag.Bool("list", false, "list experiment IDs")
		scale = flag.Float64("scale", 1.0, "request-count scale factor")
		seed  = flag.Int64("seed", 42, "workload seed")
		csv   = flag.String("csv", "", "directory to also write tables as CSV")

		replicas  = flag.Int("replicas", 0, "run cluster mode with N engine replicas")
		router    = flag.String("router", "all", "routing policy: roundrobin, leastloaded, affinity or all")
		modelName = flag.String("model", "gemma2-2b", "model for cluster mode (see Models zoo)")
		device    = flag.String("device", "h100", "device for cluster mode: h100 or l4")
		requests  = flag.Int("requests", 480, "cluster-mode request count")
		rate      = flag.Float64("rate", 0, "cluster-mode Poisson arrival rate in req/s (0 = all at once)")
		groups    = flag.Int("prefix-groups", 0, "shared-prefix classes (default 4×replicas-1)")
		prefixLen = flag.Int("prefix-len", 1024, "shared-prefix length in tokens")
	)
	flag.Parse()
	if *replicas > 0 {
		if *exp != "" || *list || *csv != "" {
			fmt.Fprintln(os.Stderr, "cluster mode (-replicas) does not combine with -exp, -list or -csv")
			os.Exit(1)
		}
		if err := runCluster(*replicas, *router, *modelName, *device, *requests, *rate, *groups, *prefixLen, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" {
			os.Exit(0)
		}
	}
	opt := experiments.Options{Scale: *scale, Seed: *seed, CSVDir: *csv}
	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "csv dir: %v\n", err)
			os.Exit(1)
		}
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		r, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s)\n", id, strings.Join(experiments.IDs(), ", "))
			os.Exit(1)
		}
		start := time.Now()
		if err := r(os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// runCluster compares routing policies on a shared-prefix workload.
func runCluster(replicas int, router, modelName, device string, requests int, rate float64, groups, prefixLen int, seed int64) error {
	spec, err := model.ByName(modelName)
	if err != nil {
		return err
	}
	var dev gpu.Device
	switch strings.ToLower(device) {
	case "h100":
		dev = gpu.H100()
	case "l4":
		dev = gpu.L4()
	default:
		return fmt.Errorf("unknown device %q (want h100 or l4)", device)
	}
	var policies []cluster.RouterPolicy
	if router == "all" {
		policies = []cluster.RouterPolicy{cluster.RoundRobin, cluster.LeastLoaded, cluster.PrefixAffinity}
	} else {
		p, err := cluster.ParsePolicy(router)
		if err != nil {
			return err
		}
		policies = []cluster.RouterPolicy{p}
	}
	if groups <= 0 {
		// More prefix classes than replicas, deliberately co-prime-ish
		// so round-robin cannot accidentally align classes to replicas.
		groups = 4*replicas - 1
	}
	perGroup := requests / groups
	if perGroup < 1 {
		perGroup = 1
	}

	fmt.Printf("cluster: %d × %s on %s, %d requests over %d shared prefixes of %d tokens\n",
		replicas, spec.Name, dev.Name, groups*perGroup, groups, prefixLen)
	fmt.Printf("%-12s %9s %10s %10s %10s %8s %10s %8s\n",
		"router", "req/s", "p50 TTFT", "p99 TTFT", "p99 E2E", "hit", "imbalance", "kv-util")
	for _, p := range policies {
		gen := workload.NewGen(seed)
		reqs := gen.PrefixGroups(groups, perGroup, prefixLen, 128)
		if rate > 0 {
			gen.PoissonArrivals(reqs, rate)
		} else {
			workload.AllAtOnce(reqs)
		}
		c, err := cluster.New(cluster.Config{
			Spec: spec, Device: dev, Replicas: replicas, Policy: p,
		})
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := c.Serve(reqs)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %9.1f %10s %10s %10s %7.1f%% %10.2f %7.1f%%\n",
			res.Policy, res.ReqPerSec,
			res.P50TTFT.Round(time.Millisecond), res.P99TTFT.Round(time.Millisecond),
			res.P99E2E.Round(time.Millisecond),
			100*res.HitRate, res.Imbalance, 100*res.MeanKVUtil)
		if res.Failed > 0 {
			fmt.Printf("  (%d requests failed)\n", res.Failed)
		}
		for _, pr := range res.PerReplica {
			fmt.Printf("  replica %d: %4d reqs, %8d tokens, hit %5.1f%%, peak kv %5.1f%%\n",
				pr.Replica, pr.Requests, pr.RoutedTokens,
				100*pr.Result.HitRate, 100*pr.Result.PeakKVUtil)
		}
		fmt.Printf("  [%v wall]\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
