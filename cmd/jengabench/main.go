// Command jengabench runs the paper's experiments by ID and prints the
// corresponding tables and series.
//
// Usage:
//
//	jengabench -list
//	jengabench -exp fig13 -scale 0.5
//	jengabench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"jenga/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment ID to run (or 'all')")
		list  = flag.Bool("list", false, "list experiment IDs")
		scale = flag.Float64("scale", 1.0, "request-count scale factor")
		seed  = flag.Int64("seed", 42, "workload seed")
		csv   = flag.String("csv", "", "directory to also write tables as CSV")
	)
	flag.Parse()
	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" {
			os.Exit(0)
		}
	}
	opt := experiments.Options{Scale: *scale, Seed: *seed, CSVDir: *csv}
	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "csv dir: %v\n", err)
			os.Exit(1)
		}
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		r, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s)\n", id, strings.Join(experiments.IDs(), ", "))
			os.Exit(1)
		}
		start := time.Now()
		if err := r(os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
