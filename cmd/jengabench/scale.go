package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"jenga/internal/bench"
	"jenga/internal/metrics"
	"jenga/internal/workload"
)

// scaleBench is the scale section of BENCH_serving.json: the streamed
// ServeStream harness at fleet size, tracked across PRs — how many
// requests per wall second the simulator processes, how much heap a
// never-materialized workload needs, and what the sharded event loops
// buy over the serial per-arrival drive.
type scaleBench struct {
	Replicas        int     `json:"replicas"`
	Groups          int     `json:"groups"`
	PrefixLen       int     `json:"prefix_len"`
	SuffixLen       int     `json:"suffix_len"`
	RatePerS        float64 `json:"rate_per_s"`
	Workload        string  `json:"workload"`
	SnapshotEveryMs float64 `json:"snapshot_every_ms"`
	// NumCPU and Gomaxprocs record the harness host: wall-clock shard
	// scaling is bounded by physical cores, so the sweep is only
	// interpretable next to them.
	NumCPU     int    `json:"num_cpu"`
	Gomaxprocs int    `json:"gomaxprocs"`
	Note       string `json:"note,omitempty"`

	// Serial is the ServeOnline baseline and Stream the same-shape
	// ServeStream run (shards=1): their ratio is the algorithmic
	// speedup of epoch snapshots plus streamed aggregation, with no
	// parallelism involved.
	Serial         *scaleRowJSON  `json:"serial_baseline,omitempty"`
	Stream         *scaleRowJSON  `json:"stream_baseline,omitempty"`
	StreamVsSerial float64        `json:"stream_vs_serial_speedup,omitempty"`
	SpeedupAt8Vs1  float64        `json:"speedup_8_shards_vs_1,omitempty"`
	ShardSweep     []scaleRowJSON `json:"shard_sweep,omitempty"`
}

// scaleRowJSON is one measured run.
type scaleRowJSON struct {
	Requests      int     `json:"requests"`
	Shards        int     `json:"shards"`
	WallMs        float64 `json:"wall_ms"`
	ReqPerWallSec float64 `json:"req_per_wall_s"`
	PeakHeapMB    float64 `json:"peak_heap_mb"`
	SimReqPerSec  float64 `json:"sim_req_per_s"`
	HitRate       float64 `json:"hit_rate"`
	Finished      int     `json:"finished"`
}

func scaleRowJSONOf(r bench.ScaleResult) scaleRowJSON {
	return scaleRowJSON{
		Requests:      r.Requests,
		Shards:        r.Shards,
		WallMs:        float64(r.Wall) / float64(time.Millisecond),
		ReqPerWallSec: r.ReqPerWallSec,
		PeakHeapMB:    float64(r.PeakHeapBytes) / (1 << 20),
		SimReqPerSec:  r.ReqPerSimSec,
		HitRate:       r.HitRate,
		Finished:      r.Finished,
	}
}

// scaleWorkloadSource resolves -stream-workload into a streamed source
// factory (nil = the built-in PrefixGroups stream).
func scaleWorkloadSource(name string) (func(bench.ScaleOptions) workload.Source, error) {
	switch name {
	case "", "prefixgroups":
		return nil, nil
	case "sharegpt":
		return func(opt bench.ScaleOptions) workload.Source {
			src := workload.NewGen(opt.Seed).ShareGPTSource(opt.Requests)
			return workload.PoissonSource(src, workload.NewGen(opt.Seed+1), opt.Rate)
		}, nil
	case "mixed":
		// Half shared-prefix, half conversational, k-way merged — the
		// MergeSources path at scale.
		return func(opt bench.ScaleOptions) workload.Source {
			half := opt.Requests / 2
			perGroup := (half + opt.Groups - 1) / opt.Groups
			pg := workload.PoissonSource(
				workload.NewGen(opt.Seed).PrefixGroupsSource(opt.Groups, perGroup, opt.PrefixLen, opt.SuffixLen),
				workload.NewGen(opt.Seed+1), opt.Rate/2)
			sg := workload.PoissonSource(
				workload.NewGen(opt.Seed+2).ShareGPTSource(opt.Requests-half),
				workload.NewGen(opt.Seed+3), opt.Rate/2)
			return workload.MergeSources(pg, sg)
		}, nil
	default:
		return nil, fmt.Errorf("unknown -stream-workload %q (prefixgroups, sharegpt or mixed)", name)
	}
}

// runScaleServe runs the scale benchmark: a serial-vs-stream baseline
// pair at a size ServeOnline can still handle, then the full streamed
// run swept across shard counts, and writes the scale section of
// -bench-json (preserving every other section).
func runScaleServe(requests, replicas, shards int, rate float64, groups, prefixLen int,
	streamWorkload string, seed int64, benchJSON string) error {
	newSource, err := scaleWorkloadSource(streamWorkload)
	if err != nil {
		return err
	}
	base := bench.DefaultScaleOptions(bench.ScaleOptions{
		Requests:  requests,
		Replicas:  replicas,
		Rate:      rate,
		Groups:    groups,
		PrefixLen: prefixLen,
		Seed:      seed,
		NewSource: newSource,
	})
	sb := scaleBench{
		Replicas:        base.Replicas,
		Groups:          base.Groups,
		PrefixLen:       base.PrefixLen,
		SuffixLen:       base.SuffixLen,
		RatePerS:        base.Rate,
		Workload:        streamWorkloadName(streamWorkload),
		SnapshotEveryMs: 10,
		NumCPU:          runtime.NumCPU(),
		Gomaxprocs:      runtime.GOMAXPROCS(0),
	}
	if sb.NumCPU <= 1 {
		sb.Note = "single-core host: shard scaling is concurrency without parallelism; the stream-vs-serial row is the algorithmic win"
	}

	// Baseline pair: the serial path is O(replicas × arrivals) in
	// snapshot work and materializes the stream, so it runs at a size
	// it can finish in reasonable wall time.
	baseReq := requests / 10
	if baseReq > 100_000 {
		baseReq = 100_000
	}
	if baseReq < 1_000 {
		baseReq = requests
	}
	bopt := base
	bopt.Requests = baseReq
	bopt.Shards = 1
	serial, err := bench.RunScaleSerial(bopt)
	if err != nil {
		return err
	}
	fmt.Printf("serial  %8d req  wall %8.0fms  %7.0f req/wall-s  peak heap %6.1f MB\n",
		serial.Requests, float64(serial.Wall)/1e6, serial.ReqPerWallSec, float64(serial.PeakHeapBytes)/(1<<20))
	stream1, err := bench.RunScale(bopt)
	if err != nil {
		return err
	}
	fmt.Printf("stream  %8d req  wall %8.0fms  %7.0f req/wall-s  peak heap %6.1f MB\n",
		stream1.Requests, float64(stream1.Wall)/1e6, stream1.ReqPerWallSec, float64(stream1.PeakHeapBytes)/(1<<20))
	sRow, bRow := scaleRowJSONOf(serial), scaleRowJSONOf(stream1)
	sb.Serial, sb.Stream = &sRow, &bRow
	sb.StreamVsSerial = metrics.Speedup(stream1.ReqPerWallSec, serial.ReqPerWallSec)

	// Shard sweep at full size. A fixed shard count (-shards > 0) runs
	// only that point.
	counts := []int{1, 2, 4, 8}
	if shards > 0 {
		counts = []int{shards}
	}
	var at1, at8 float64
	for _, s := range counts {
		opt := base
		opt.Shards = s
		row, err := bench.RunScale(opt)
		if err != nil {
			return err
		}
		fmt.Printf("shards %2d  %8d req  wall %8.0fms  %7.0f req/wall-s  peak heap %6.1f MB  sim %7.2f req/s\n",
			s, row.Requests, float64(row.Wall)/1e6, row.ReqPerWallSec, float64(row.PeakHeapBytes)/(1<<20), row.ReqPerSimSec)
		sb.ShardSweep = append(sb.ShardSweep, scaleRowJSONOf(row))
		if s == 1 {
			at1 = row.ReqPerWallSec
		}
		if s == 8 {
			at8 = row.ReqPerWallSec
		}
	}
	if at1 > 0 && at8 > 0 {
		sb.SpeedupAt8Vs1 = at8 / at1
	}
	fmt.Printf("stream vs serial: %.2fx (same %d-request shape, shards=1)\n", sb.StreamVsSerial, baseReq)

	if benchJSON == "" {
		return nil
	}
	out := loadServingBench(benchJSON)
	out.Scale = &sb
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(benchJSON, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (scale section)\n", benchJSON)
	return nil
}

func streamWorkloadName(name string) string {
	if name == "" {
		return "prefixgroups"
	}
	return name
}
