// Command jengalint is the repo's offline multichecker: it runs the
// internal/analysis suite (maporder, detsource, confine, hotpath,
// capability — the machine-enforced determinism, confinement, and
// hot-path contracts; see DESIGN.md "Determinism contract") over the
// given package patterns.
//
//	jengalint ./...                  # the whole module (make lint)
//	jengalint -analyzers maporder ./internal/core
//	jengalint -tests=false ./...     # skip _test.go files entirely
//
// Unlike the staticcheck pin, jengalint builds from the module itself
// with no dependencies beyond the standard library, so it runs in
// offline CI: type information comes from `go list -export` export
// data, not the network. Exit status: 0 clean, 1 findings, 2 usage or
// load error.
package main

import (
	"flag"
	"fmt"
	"os"

	"jenga/internal/analysis"
)

func main() {
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	tests := flag.Bool("tests", true, "include _test.go files (only capability reports in them)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	as, err := analysis.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jengalint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "jengalint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(dir, *tests, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jengalint:", err)
		os.Exit(2)
	}
	diags, fset, err := analysis.RunAnalyzers(pkgs, as)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jengalint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "jengalint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
