package jenga_test

// Core hot-path micro-benchmarks: the allocator and engine paths the
// step loop exercises on every scheduled token. The fixtures live in
// internal/bench and are shared with `jengabench -bench-core`, which
// commits their ns/op and allocs/op to BENCH_core.json so the perf
// trajectory has data points and regressions surface in review. Run
//
//	go test -bench='AllocSmall|ClaimRelease|LookupWarm|CommitDecode|RunStep' -benchmem .
//
// See each fixture's doc comment for the regime it pins down.

import (
	"testing"

	"jenga/internal/bench"
)

// benchOp builds one fixture and times it with the shared harness.
func benchOp(b *testing.B, mk func() (*bench.Op, error)) {
	b.Helper()
	op, err := mk()
	if err != nil {
		b.Fatal(err)
	}
	bench.Loop(b, op)
}

// BenchmarkAllocSmall: one §5.4 step-4 allocation plus release at
// ~99.9% utilization of a quarter-million-page pool.
func BenchmarkAllocSmall(b *testing.B) { benchOp(b, bench.AllocSmall) }

// BenchmarkClaimRelease: a one-block prefix-cache claim and release
// that re-keys a 4096-page large page for the step-3 LRU.
func BenchmarkClaimRelease(b *testing.B) { benchOp(b, bench.ClaimRelease) }

// BenchmarkLookupWarm: admission-path prefix lookup over a fully
// cached 8k-token prompt.
func BenchmarkLookupWarm(b *testing.B) { benchOp(b, bench.LookupWarm) }

// BenchmarkCommitDecode: the per-token reserve+commit of one decode.
func BenchmarkCommitDecode(b *testing.B) { benchOp(b, bench.CommitDecode) }

// BenchmarkRunStepSteadyState: one engine step with 32 decode-phase
// sequences at 2k context.
func BenchmarkRunStepSteadyState(b *testing.B) { benchOp(b, bench.RunStepSteadyState) }

// BenchmarkServeOnlineArrival: ServeOnline's per-arrival router-loop
// body over an 8-replica fleet — snapshot, route, submit.
func BenchmarkServeOnlineArrival(b *testing.B) { benchOp(b, bench.ServeOnlineArrival) }
